#include "src/index/hnsw.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <mutex>
#include <queue>
#include <utility>

#include "src/common/binio.h"
#include "src/common/simd.h"
#include "src/common/topk.h"
#include "src/obs/trace.h"

namespace iccache {

namespace {

// Hard cap on sampled levels; with mL = 1/ln(16) the probability of level 24
// is ~16^-24, so this only guards against pathological rng output.
constexpr int kMaxLevel = 24;

// Version of the SaveGraph byte layout; bump on incompatible change so stale
// graph images fall back to a rebuild instead of being misread.
//   v1: float arena only.
//   v2: adds a quantization-mode byte; quantized images carry the int8 code
//       arena plus per-slot scales instead of the float arena. v1 images are
//       still accepted by float-mode indexes.
constexpr uint32_t kGraphFormatVersion = 2;

// Process-wide rerank telemetry (relaxed: these are monotonic counters the
// driver reads as deltas; no ordering is implied with index state).
std::atomic<uint64_t> g_rerank_queries{0};
std::atomic<uint64_t> g_rerank_candidates{0};

inline void PrefetchLine(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p);
  __builtin_prefetch(static_cast<const char*>(p) + 64);
#else
  (void)p;
#endif
}

}  // namespace

uint64_t HnswRerankQueriesTotal() { return g_rerank_queries.load(std::memory_order_relaxed); }
uint64_t HnswRerankCandidatesTotal() {
  return g_rerank_candidates.load(std::memory_order_relaxed);
}

HnswIndex::HnswIndex(HnswIndexConfig config)
    : config_(config),
      level_multiplier_(1.0 /
                        std::log(static_cast<double>(std::max<size_t>(2, config.max_neighbors)))),
      rng_(config.seed) {}

int HnswIndex::SampleLevel() {
  // Geometric-ish level distribution: floor(-ln(U) * mL), U in (0, 1].
  const double u = std::max(1e-12, 1.0 - rng_.Uniform());
  const int level = static_cast<int>(-std::log(u) * level_multiplier_);
  return std::min(level, kMaxLevel);
}

double HnswIndex::SimQ(const QueryRef& query, uint32_t slot) const {
  if (config_.quantize_int8) {
    // Symmetric quantized inner product. DotI8 is bit-exact across dispatch
    // levels, so traversal order is deterministic per process and across
    // machines.
    return static_cast<double>(simd::DotI8(query.i8, QVecOf(slot), config_.dim)) *
           static_cast<double>(query.scale) * static_cast<double>(scales_[slot]);
  }
  return simd::Dot(query.f32, VecOf(slot), config_.dim);
}

double HnswIndex::SimSlots(uint32_t a, uint32_t b) const {
  if (config_.quantize_int8) {
    return static_cast<double>(simd::DotI8(QVecOf(a), QVecOf(b), config_.dim)) *
           static_cast<double>(scales_[a]) * static_cast<double>(scales_[b]);
  }
  return simd::Dot(VecOf(a), VecOf(b), config_.dim);
}

uint32_t HnswIndex::GreedyStep(const QueryRef& query, uint32_t slot, int layer) const {
  double best = SimQ(query, slot);
  bool improved = true;
  while (improved) {
    improved = false;
    for (uint32_t neighbor : nodes_[slot].links[layer]) {
      const double sim = SimQ(query, neighbor);
      if (sim > best) {
        best = sim;
        slot = neighbor;
        improved = true;
      }
    }
  }
  return slot;
}

std::vector<HnswIndex::ScoredSlot> HnswIndex::SearchLayer(const QueryRef& query, uint32_t entry,
                                                          int layer, size_t ef,
                                                          std::vector<uint32_t>& epochs,
                                                          uint32_t epoch, uint64_t* visited,
                                                          uint64_t* hops) const {
  // candidates: max-heap on similarity (frontier to expand).
  std::priority_queue<std::pair<double, uint32_t>> candidates;
  // results: min-heap on similarity, bounded to ef (current best set).
  std::priority_queue<std::pair<double, uint32_t>, std::vector<std::pair<double, uint32_t>>,
                      std::greater<std::pair<double, uint32_t>>>
      results;

  const double entry_sim = SimQ(query, entry);
  candidates.emplace(entry_sim, entry);
  results.emplace(entry_sim, entry);
  epochs[entry] = epoch;
  if (visited != nullptr) {
    ++*visited;
  }

  while (!candidates.empty()) {
    const auto [sim, slot] = candidates.top();
    candidates.pop();
    if (results.size() >= ef && sim < results.top().first) {
      break;  // frontier can no longer improve the result set
    }
    if (hops != nullptr) {
      ++*hops;
    }
    const std::vector<uint32_t>& links = nodes_[slot].links[layer];
    // Warm the arena lines for the whole neighborhood before evaluating it:
    // graph hops are random access, and the evaluation loop would otherwise
    // stall on every line.
    for (uint32_t neighbor : links) {
      if (epochs[neighbor] != epoch) {
        PrefetchLine(config_.quantize_int8 ? static_cast<const void*>(QVecOf(neighbor))
                                           : static_cast<const void*>(VecOf(neighbor)));
      }
    }
    for (uint32_t neighbor : links) {
      if (epochs[neighbor] == epoch) {
        continue;
      }
      epochs[neighbor] = epoch;
      if (visited != nullptr) {
        ++*visited;
      }
      const double neighbor_sim = SimQ(query, neighbor);
      if (results.size() < ef || neighbor_sim > results.top().first) {
        candidates.emplace(neighbor_sim, neighbor);
        results.emplace(neighbor_sim, neighbor);
        if (results.size() > ef) {
          results.pop();
        }
      }
    }
  }

  std::vector<ScoredSlot> out;
  out.reserve(results.size());
  while (!results.empty()) {
    out.push_back(ScoredSlot{results.top().first, results.top().second});
    results.pop();
  }
  std::reverse(out.begin(), out.end());  // best-first
  return out;
}

std::vector<uint32_t> HnswIndex::SelectNeighbors(const std::vector<ScoredSlot>& candidates,
                                                 size_t max_count) const {
  std::vector<uint32_t> selected;
  selected.reserve(max_count);
  for (const ScoredSlot& candidate : candidates) {
    if (selected.size() >= max_count) {
      break;
    }
    // Keep only candidates closer to the query than to any kept neighbor:
    // this spreads links across directions instead of clustering them on the
    // nearest blob (no backfill of pruned candidates — redundant links waste
    // degree slots that long-range edges need).
    bool diverse = true;
    for (uint32_t kept : selected) {
      if (SimSlots(candidate.slot, kept) > candidate.sim) {
        diverse = false;
        break;
      }
    }
    if (diverse) {
      selected.push_back(candidate.slot);
    }
  }
  return selected;
}

void HnswIndex::ShrinkLinks(uint32_t slot, int layer) {
  std::vector<uint32_t>& links = nodes_[slot].links[layer];
  const size_t cap = LayerCap(layer);
  if (links.size() <= cap) {
    return;
  }
  std::vector<ScoredSlot> scored;
  scored.reserve(links.size());
  for (uint32_t neighbor : links) {
    scored.push_back(ScoredSlot{SimSlots(slot, neighbor), neighbor});
  }
  std::sort(scored.begin(), scored.end(), [](const ScoredSlot& a, const ScoredSlot& b) {
    if (a.sim != b.sim) {
      return a.sim > b.sim;
    }
    return a.slot < b.slot;
  });
  links = SelectNeighbors(scored, cap);
}

void HnswIndex::InsertLocked(uint64_t id, std::vector<float> vec) {
  const int level = SampleLevel();
  const uint32_t slot = static_cast<uint32_t>(nodes_.size());
  Node node;
  node.id = id;
  node.level = level;
  node.links.resize(static_cast<size_t>(level) + 1);
  nodes_.push_back(std::move(node));
  QueryRef query;
  query.f32 = vec.data();
  if (config_.quantize_int8) {
    qarena_.resize(qarena_.size() + config_.dim);
    float scale = 0.0f;
    simd::QuantizeI8(vec.data(), config_.dim, qarena_.data() + slot * config_.dim, &scale);
    scales_.push_back(scale);
    // Stable for the duration of this insert: qarena_ only grows on the next
    // Add.
    query.i8 = QVecOf(slot);
    query.scale = scale;
  } else {
    arena_.insert(arena_.end(), vec.begin(), vec.end());
    query.f32 = VecOf(slot);  // same stability argument as the int8 arena
  }
  slot_of_[id] = slot;
  ++live_;
  insert_epochs_.push_back(0);

  if (entry_level_ < 0) {
    entry_ = slot;
    entry_level_ = level;
    return;
  }

  uint32_t cur = entry_;
  for (int layer = entry_level_; layer > level; --layer) {
    cur = GreedyStep(query, cur, layer);
  }
  for (int layer = std::min(level, entry_level_); layer >= 0; --layer) {
    ++insert_epoch_;
    const std::vector<ScoredSlot> found =
        SearchLayer(query, cur, layer, std::max<size_t>(1, config_.ef_construction),
                    insert_epochs_, insert_epoch_);
    cur = found.empty() ? cur : found[0].slot;
    const std::vector<uint32_t> neighbors = SelectNeighbors(found, config_.max_neighbors);
    for (uint32_t neighbor : neighbors) {
      nodes_[slot].links[layer].push_back(neighbor);
      nodes_[neighbor].links[layer].push_back(slot);
      ShrinkLinks(neighbor, layer);
    }
  }
  if (level > entry_level_) {
    entry_ = slot;
    entry_level_ = level;
  }
}

Status HnswIndex::Add(uint64_t id, std::vector<float> vec) {
  if (vec.size() != config_.dim) {
    return Status::InvalidArgument("vector dimension mismatch");
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  RemoveLocked(id);  // overwrite semantics, matching FlatIndex
  InsertLocked(id, std::move(vec));
  MaybeCompactLocked();
  return Status::Ok();
}

bool HnswIndex::RemoveLocked(uint64_t id) {
  const auto it = slot_of_.find(id);
  if (it == slot_of_.end()) {
    return false;
  }
  nodes_[it->second].deleted = true;
  slot_of_.erase(it);
  --live_;
  if (live_ == 0) {
    // Nothing left to preserve: drop the whole graph instead of keeping a
    // structure made purely of tombstones.
    nodes_.clear();
    arena_.clear();
    qarena_.clear();
    scales_.clear();
    insert_epochs_.clear();
    insert_epoch_ = 0;
    entry_ = 0;
    entry_level_ = -1;
  }
  return true;
}

bool HnswIndex::Remove(uint64_t id) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (!RemoveLocked(id)) {
    return false;
  }
  MaybeCompactLocked();
  return true;
}

void HnswIndex::MaybeCompactLocked() {
  const size_t dead = nodes_.size() - live_;
  if (dead < config_.min_tombstones_to_compact) {
    return;
  }
  if (static_cast<double>(dead) <=
      config_.max_tombstone_fraction * static_cast<double>(nodes_.size())) {
    return;
  }
  CompactLocked();
}

void HnswIndex::CompactLocked() {
  // Survivors are re-inserted from the float form. In quantized mode the
  // dequantized values are exact multiples of the slot scale with the max
  // element on the ±127 rail, so requantization reproduces the identical
  // codes and scale — compaction is lossless either way.
  std::vector<std::pair<uint64_t, std::vector<float>>> survivors;
  survivors.reserve(live_);
  for (uint32_t slot = 0; slot < nodes_.size(); ++slot) {
    if (nodes_[slot].deleted) {
      continue;
    }
    std::vector<float> vec(config_.dim);
    if (config_.quantize_int8) {
      simd::DequantizeI8(QVecOf(slot), config_.dim, scales_[slot], vec.data());
    } else {
      std::copy(VecOf(slot), VecOf(slot) + config_.dim, vec.begin());
    }
    survivors.emplace_back(nodes_[slot].id, std::move(vec));
  }
  nodes_.clear();
  arena_.clear();
  qarena_.clear();
  scales_.clear();
  slot_of_.clear();
  insert_epochs_.clear();
  insert_epoch_ = 0;
  entry_ = 0;
  entry_level_ = -1;
  live_ = 0;
  for (auto& [id, vec] : survivors) {
    InsertLocked(id, std::move(vec));
  }
}

void HnswIndex::Compact() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  CompactLocked();
}

std::vector<SearchResult> HnswIndex::SearchLocked(const std::vector<float>& query, size_t k,
                                                  size_t ef) const {
  std::vector<SearchResult> results;
  if (k == 0 || entry_level_ < 0 || query.size() != config_.dim) {
    return results;
  }
  QueryRef q;
  q.f32 = query.data();
  // Reader-side scratch is thread_local so concurrent searches under the
  // shared lock never share state (the quantized-query buffer below and the
  // visited set both follow this rule).
  static thread_local std::vector<int8_t> q8;
  if (config_.quantize_int8) {
    if (q8.size() < config_.dim) {
      q8.resize(config_.dim);
    }
    float scale = 0.0f;
    simd::QuantizeI8(query.data(), config_.dim, q8.data(), &scale);
    q.i8 = q8.data();
    q.scale = scale;
  }
  // Span args carry the layer-0 visited-node and frontier-expansion counts;
  // the counters are only maintained while tracing is enabled so the beam
  // search stays branch-free otherwise.
  TraceSpan span(TraceCategory::kHnswSearch);
  uint64_t visited = 0;
  uint64_t hops = 0;
  uint32_t cur = entry_;
  for (int layer = entry_level_; layer >= 1; --layer) {
    cur = GreedyStep(q, cur, layer);
  }
  // Visited scratch: epoch-reset so a query costs O(ef*degree) instead of an
  // O(N) clear. The buffer is shared across index instances on a thread,
  // which is safe: the epoch counter is monotonic, so marks from any earlier
  // search can never equal the current epoch.
  static thread_local std::vector<uint32_t> epochs;
  static thread_local uint32_t epoch = 0;
  if (epochs.size() < nodes_.size()) {
    epochs.resize(nodes_.size(), 0);
  }
  if (++epoch == 0) {  // wrap-around: stale marks would alias, clear once
    std::fill(epochs.begin(), epochs.end(), 0);
    epoch = 1;
  }
  const std::vector<ScoredSlot> found =
      SearchLayer(q, cur, 0, std::max(ef, k), epochs, epoch,
                  span.active() ? &visited : nullptr, span.active() ? &hops : nullptr);
  span.SetArgs(visited, hops);
  TopK<uint64_t> top(k);
  if (config_.quantize_int8 && config_.rerank_k > 0) {
    // Exact re-rank: the beam ordered candidates by the quantized metric;
    // re-score the best rerank_k live ones against the full-precision query
    // (asymmetric f32 x i8 dot) so the final top-k ordering is free of
    // quantization noise on the query side.
    const size_t budget = std::max(config_.rerank_k, k);
    size_t rescored = 0;
    for (const ScoredSlot& scored : found) {
      if (nodes_[scored.slot].deleted) {
        continue;
      }
      if (rescored >= budget) {
        break;
      }
      const double exact = simd::DotF32I8(query.data(), QVecOf(scored.slot), config_.dim) *
                           static_cast<double>(scales_[scored.slot]);
      top.Push(exact, nodes_[scored.slot].id);
      ++rescored;
    }
    g_rerank_queries.fetch_add(1, std::memory_order_relaxed);
    g_rerank_candidates.fetch_add(rescored, std::memory_order_relaxed);
  } else {
    for (const ScoredSlot& scored : found) {
      if (!nodes_[scored.slot].deleted) {
        top.Push(scored.sim, nodes_[scored.slot].id);
      }
    }
  }
  for (auto& [score, id] : top.TakeSortedDescending()) {
    results.push_back(SearchResult{id, score});
  }
  return results;
}

std::vector<SearchResult> HnswIndex::Search(const std::vector<float>& query, size_t k) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return SearchLocked(query, k, config_.ef_search);
}

std::vector<SearchResult> HnswIndex::SearchEf(const std::vector<float>& query, size_t k,
                                              size_t ef) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return SearchLocked(query, k, ef);
}

bool HnswIndex::GetVector(uint64_t id, std::vector<float>* out) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const auto it = slot_of_.find(id);
  if (it == slot_of_.end()) {
    return false;
  }
  if (config_.quantize_int8) {
    out->resize(config_.dim);
    simd::DequantizeI8(QVecOf(it->second), config_.dim, scales_[it->second], out->data());
  } else {
    out->assign(VecOf(it->second), VecOf(it->second) + config_.dim);
  }
  return true;
}

size_t HnswIndex::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return live_;
}

size_t HnswIndex::tombstones() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return nodes_.size() - live_;
}

int HnswIndex::max_level() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return entry_level_;
}

size_t HnswIndex::arena_bytes() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return arena_.size() * sizeof(float) + qarena_.size() * sizeof(int8_t) +
         scales_.size() * sizeof(float);
}

void HnswIndex::SaveGraph(std::string* out) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  ByteWriter w;
  w.PutU32(kGraphFormatVersion);
  w.PutU8(config_.quantize_int8 ? 1 : 0);
  w.PutU64(config_.dim);
  w.PutU64(config_.max_neighbors);
  w.PutU64(nodes_.size());
  w.PutU64(live_);
  w.PutU32(entry_);
  w.PutI32(entry_level_);
  const RngState rng = rng_.SaveState();
  for (uint64_t s : rng.s) {
    w.PutU64(s);
  }
  w.PutDouble(rng.cached_normal);
  w.PutU8(rng.has_cached_normal ? 1 : 0);
  for (const Node& node : nodes_) {
    w.PutU64(node.id);
    w.PutI32(node.level);
    w.PutU8(node.deleted ? 1 : 0);
    for (const std::vector<uint32_t>& layer : node.links) {
      w.PutU32(static_cast<uint32_t>(layer.size()));
      for (uint32_t link : layer) {
        w.PutU32(link);
      }
    }
  }
  static_assert(sizeof(float) == 4, "IEEE-754 float expected");
  if (config_.quantize_int8) {
    // Quantized image: the raw code arena plus per-slot scales. Storing the
    // codes (not dequantized floats) makes restore exact by construction.
    w.PutU64(qarena_.size());
    w.PutBytes(qarena_.data(), qarena_.size());
    w.PutBytes(scales_.data(), scales_.size() * sizeof(float));
  } else {
    // Arena as one raw little-endian float block (the dominant payload).
    w.PutU64(arena_.size());
    w.PutBytes(arena_.data(), arena_.size() * sizeof(float));
  }
  *out = w.TakeBytes();
}

bool HnswIndex::LoadGraph(const std::string& blob) {
  // Parse and validate into locals first: a mismatched or corrupted image
  // must leave the index exactly as it was (the caller rebuilds instead).
  ByteReader r(blob);
  const uint32_t version = r.GetU32();
  if (version != kGraphFormatVersion && version != 1) {
    return false;
  }
  // v1 images predate quantization and are implicitly float; a quantized
  // index cannot adopt one (the caller rebuilds, requantizing as it goes).
  const bool quantized = version >= 2 && r.GetU8() != 0;
  if (quantized != config_.quantize_int8) {
    return false;
  }
  const uint64_t dim = r.GetU64();
  const uint64_t max_neighbors = r.GetU64();
  const uint64_t node_count = r.GetU64();
  const uint64_t live = r.GetU64();
  const uint32_t entry = r.GetU32();
  const int32_t entry_level = r.GetI32();
  RngState rng;
  for (auto& s : rng.s) {
    s = r.GetU64();
  }
  rng.cached_normal = r.GetDouble();
  rng.has_cached_normal = r.GetU8() != 0;
  // node_count is also bounded by the blob itself (every node costs >= 13
  // bytes), which keeps the reserve() below sane on corrupted input.
  if (!r.ok() || dim != config_.dim || max_neighbors != config_.max_neighbors ||
      live > node_count || node_count > blob.size()) {
    return false;
  }

  std::vector<Node> nodes;
  nodes.reserve(node_count);
  std::unordered_map<uint64_t, uint32_t> slot_of;
  slot_of.reserve(live);
  for (uint64_t slot = 0; slot < node_count; ++slot) {
    Node node;
    node.id = r.GetU64();
    node.level = r.GetI32();
    node.deleted = r.GetU8() != 0;
    if (!r.ok() || node.level < 0 || node.level > kMaxLevel) {
      return false;
    }
    node.links.resize(static_cast<size_t>(node.level) + 1);
    for (auto& layer : node.links) {
      const uint32_t n = r.GetU32();
      if (!r.ok() || n > node_count) {
        return false;
      }
      layer.resize(n);
      for (auto& link : layer) {
        link = r.GetU32();
        if (link >= node_count) {
          return false;
        }
      }
    }
    if (!node.deleted && !slot_of.emplace(node.id, static_cast<uint32_t>(slot)).second) {
      return false;  // duplicate live id
    }
    nodes.push_back(std::move(node));
  }
  // Structural validation pass (needs every node's level, so it runs after
  // parsing): a link at layer l must target a node whose links reach layer l,
  // or the first traversal through it would index out of bounds.
  for (const Node& node : nodes) {
    for (size_t layer = 0; layer < node.links.size(); ++layer) {
      for (uint32_t link : node.links[layer]) {
        if (static_cast<size_t>(nodes[link].level) < layer) {
          return false;
        }
      }
    }
  }
  const uint64_t arena_len = r.GetU64();
  if (!r.ok() || arena_len != node_count * config_.dim) {
    return false;
  }
  std::vector<float> arena;
  std::vector<int8_t> qarena;
  std::vector<float> scales;
  if (quantized) {
    if (r.remaining() != arena_len + node_count * 4) {
      return false;
    }
    qarena.resize(static_cast<size_t>(arena_len));
    scales.resize(static_cast<size_t>(node_count));
    if (!r.GetBytes(qarena.data(), qarena.size()) ||
        !r.GetBytes(scales.data(), scales.size() * sizeof(float))) {
      return false;
    }
  } else {
    if (r.remaining() != arena_len * 4) {
      return false;
    }
    arena.resize(static_cast<size_t>(arena_len));
    if (!r.GetBytes(arena.data(), arena.size() * sizeof(float))) {
      return false;
    }
  }
  if (slot_of.size() != live ||
      (node_count > 0 && (entry >= node_count || entry_level < 0 || entry_level > kMaxLevel)) ||
      (node_count == 0 && entry_level != -1)) {
    return false;
  }

  std::unique_lock<std::shared_mutex> lock(mu_);
  nodes_ = std::move(nodes);
  arena_ = std::move(arena);
  qarena_ = std::move(qarena);
  scales_ = std::move(scales);
  slot_of_ = std::move(slot_of);
  entry_ = entry;
  entry_level_ = entry_level;
  live_ = static_cast<size_t>(live);
  rng_.RestoreState(rng);
  insert_epochs_.assign(nodes_.size(), 0);
  insert_epoch_ = 0;
  return true;
}

}  // namespace iccache
