#include "src/index/hnsw.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <mutex>
#include <queue>
#include <utility>

#include "src/common/binio.h"
#include "src/common/simd.h"
#include "src/obs/trace.h"

namespace iccache {

namespace {

// Hard cap on sampled levels; with mL = 1/ln(16) the probability of level 24
// is ~16^-24, so this only guards against pathological rng output.
constexpr int kMaxLevel = 24;

// Version of the SaveGraph byte layout; bump on incompatible change so stale
// graph images fall back to a rebuild instead of being misread.
//   v1: float arena only.
//   v2: adds a quantization-mode byte; quantized images carry the int8 code
//       arena plus per-slot scales instead of the float arena. v1 images are
//       still accepted by float-mode indexes.
constexpr uint32_t kGraphFormatVersion = 2;

// Process-wide rerank telemetry (relaxed: these are monotonic counters the
// driver reads as deltas; no ordering is implied with index state).
std::atomic<uint64_t> g_rerank_queries{0};
std::atomic<uint64_t> g_rerank_candidates{0};

inline void PrefetchLine(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p);
  __builtin_prefetch(static_cast<const char*>(p) + 64);
#else
  (void)p;
#endif
}

// Prefetches every cache line of [p, p + bytes): a 128-d float vector spans 8
// lines and the hardware stride prefetcher only kicks in after the first
// misses, so covering the whole span up front matters when the scoring pass
// runs a beam-step (or seven other queries' beam-steps) later.
inline void PrefetchSpan(const void* p, size_t bytes) {
#if defined(__GNUC__) || defined(__clang__)
  const char* c = static_cast<const char*>(p);
  for (size_t off = 0; off < bytes; off += 64) {
    __builtin_prefetch(c + off);
  }
#else
  (void)p;
  (void)bytes;
#endif
}

// Write-intent prefetch for the visited bookkeeping (the line will be dirtied
// by the epoch/mask store).
inline void PrefetchWrite(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, 1);
#else
  (void)p;
#endif
}

}  // namespace

uint64_t HnswRerankQueriesTotal() { return g_rerank_queries.load(std::memory_order_relaxed); }
uint64_t HnswRerankCandidatesTotal() {
  return g_rerank_candidates.load(std::memory_order_relaxed);
}

HnswIndex::HnswIndex(HnswIndexConfig config)
    : config_(config),
      level_multiplier_(1.0 /
                        std::log(static_cast<double>(std::max<size_t>(2, config.max_neighbors)))),
      rng_(config.seed) {}

int HnswIndex::SampleLevel() {
  // Geometric-ish level distribution: floor(-ln(U) * mL), U in (0, 1].
  const double u = std::max(1e-12, 1.0 - rng_.Uniform());
  const int level = static_cast<int>(-std::log(u) * level_multiplier_);
  return std::min(level, kMaxLevel);
}

double HnswIndex::SimQ(const QueryRef& query, uint32_t slot) const {
  if (config_.quantize_int8) {
    // Symmetric quantized inner product. DotI8 is bit-exact across dispatch
    // levels, so traversal order is deterministic per process and across
    // machines.
    return static_cast<double>(simd::DotI8(query.i8, QVecOf(slot), config_.dim)) *
           static_cast<double>(query.scale) * static_cast<double>(scales_[slot]);
  }
  return simd::Dot(query.f32, VecOf(slot), config_.dim);
}

double HnswIndex::SimSlots(uint32_t a, uint32_t b) const {
  if (config_.quantize_int8) {
    return static_cast<double>(simd::DotI8(QVecOf(a), QVecOf(b), config_.dim)) *
           static_cast<double>(scales_[a]) * static_cast<double>(scales_[b]);
  }
  return simd::Dot(VecOf(a), VecOf(b), config_.dim);
}

uint32_t HnswIndex::GreedyStep(const QueryRef& query, uint32_t slot, int layer) const {
  double best = SimQ(query, slot);
  bool improved = true;
  while (improved) {
    improved = false;
    for (uint32_t neighbor : nodes_[slot].links[layer]) {
      const double sim = SimQ(query, neighbor);
      if (sim > best) {
        best = sim;
        slot = neighbor;
        improved = true;
      }
    }
  }
  return slot;
}

std::vector<HnswIndex::ScoredSlot> HnswIndex::SearchLayer(const QueryRef& query, uint32_t entry,
                                                          int layer, size_t ef,
                                                          std::vector<uint32_t>& epochs,
                                                          uint32_t epoch, uint64_t* visited,
                                                          uint64_t* hops) const {
  // candidates: max-heap on similarity (frontier to expand).
  std::priority_queue<std::pair<double, uint32_t>> candidates;
  // results: min-heap on similarity, bounded to ef (current best set).
  std::priority_queue<std::pair<double, uint32_t>, std::vector<std::pair<double, uint32_t>>,
                      std::greater<std::pair<double, uint32_t>>>
      results;

  const double entry_sim = SimQ(query, entry);
  candidates.emplace(entry_sim, entry);
  results.emplace(entry_sim, entry);
  epochs[entry] = epoch;
  if (visited != nullptr) {
    ++*visited;
  }

  while (!candidates.empty()) {
    const auto [sim, slot] = candidates.top();
    candidates.pop();
    if (results.size() >= ef && sim < results.top().first) {
      break;  // frontier can no longer improve the result set
    }
    if (hops != nullptr) {
      ++*hops;
    }
    const std::vector<uint32_t>& links = nodes_[slot].links[layer];
    // Warm the arena lines for the whole neighborhood before evaluating it:
    // graph hops are random access, and the evaluation loop would otherwise
    // stall on every line.
    for (uint32_t neighbor : links) {
      if (epochs[neighbor] != epoch) {
        PrefetchLine(config_.quantize_int8 ? static_cast<const void*>(QVecOf(neighbor))
                                           : static_cast<const void*>(VecOf(neighbor)));
      }
    }
    for (uint32_t neighbor : links) {
      if (epochs[neighbor] == epoch) {
        continue;
      }
      epochs[neighbor] = epoch;
      if (visited != nullptr) {
        ++*visited;
      }
      const double neighbor_sim = SimQ(query, neighbor);
      if (results.size() < ef || neighbor_sim > results.top().first) {
        candidates.emplace(neighbor_sim, neighbor);
        results.emplace(neighbor_sim, neighbor);
        if (results.size() > ef) {
          results.pop();
        }
      }
    }
  }

  std::vector<ScoredSlot> out;
  out.reserve(results.size());
  while (!results.empty()) {
    out.push_back(ScoredSlot{results.top().first, results.top().second});
    results.pop();
  }
  std::reverse(out.begin(), out.end());  // best-first
  return out;
}

std::vector<uint32_t> HnswIndex::SelectNeighbors(const std::vector<ScoredSlot>& candidates,
                                                 size_t max_count) const {
  std::vector<uint32_t> selected;
  selected.reserve(max_count);
  for (const ScoredSlot& candidate : candidates) {
    if (selected.size() >= max_count) {
      break;
    }
    // Keep only candidates closer to the query than to any kept neighbor:
    // this spreads links across directions instead of clustering them on the
    // nearest blob (no backfill of pruned candidates — redundant links waste
    // degree slots that long-range edges need).
    bool diverse = true;
    for (uint32_t kept : selected) {
      if (SimSlots(candidate.slot, kept) > candidate.sim) {
        diverse = false;
        break;
      }
    }
    if (diverse) {
      selected.push_back(candidate.slot);
    }
  }
  return selected;
}

void HnswIndex::ShrinkLinks(uint32_t slot, int layer) {
  std::vector<uint32_t>& links = nodes_[slot].links[layer];
  const size_t cap = LayerCap(layer);
  if (links.size() <= cap) {
    return;
  }
  std::vector<ScoredSlot> scored;
  scored.reserve(links.size());
  for (uint32_t neighbor : links) {
    scored.push_back(ScoredSlot{SimSlots(slot, neighbor), neighbor});
  }
  std::sort(scored.begin(), scored.end(), [](const ScoredSlot& a, const ScoredSlot& b) {
    if (a.sim != b.sim) {
      return a.sim > b.sim;
    }
    return a.slot < b.slot;
  });
  links = SelectNeighbors(scored, cap);
}

void HnswIndex::InsertLocked(uint64_t id, std::vector<float> vec) {
  const int level = SampleLevel();
  const uint32_t slot = static_cast<uint32_t>(nodes_.size());
  Node node;
  node.id = id;
  node.level = level;
  node.links.resize(static_cast<size_t>(level) + 1);
  nodes_.push_back(std::move(node));
  QueryRef query;
  query.f32 = vec.data();
  if (config_.quantize_int8) {
    qarena_.resize(qarena_.size() + config_.dim);
    float scale = 0.0f;
    simd::QuantizeI8(vec.data(), config_.dim, qarena_.data() + slot * config_.dim, &scale);
    scales_.push_back(scale);
    // Stable for the duration of this insert: qarena_ only grows on the next
    // Add.
    query.i8 = QVecOf(slot);
    query.scale = scale;
  } else {
    arena_.insert(arena_.end(), vec.begin(), vec.end());
    query.f32 = VecOf(slot);  // same stability argument as the int8 arena
  }
  slot_of_[id] = slot;
  ++live_;
  insert_epochs_.push_back(0);

  if (entry_level_ < 0) {
    entry_ = slot;
    entry_level_ = level;
    return;
  }

  uint32_t cur = entry_;
  for (int layer = entry_level_; layer > level; --layer) {
    cur = GreedyStep(query, cur, layer);
  }
  for (int layer = std::min(level, entry_level_); layer >= 0; --layer) {
    ++insert_epoch_;
    const std::vector<ScoredSlot> found =
        SearchLayer(query, cur, layer, std::max<size_t>(1, config_.ef_construction),
                    insert_epochs_, insert_epoch_);
    cur = found.empty() ? cur : found[0].slot;
    const std::vector<uint32_t> neighbors = SelectNeighbors(found, config_.max_neighbors);
    for (uint32_t neighbor : neighbors) {
      nodes_[slot].links[layer].push_back(neighbor);
      nodes_[neighbor].links[layer].push_back(slot);
      ShrinkLinks(neighbor, layer);
    }
  }
  if (level > entry_level_) {
    entry_ = slot;
    entry_level_ = level;
  }
}

Status HnswIndex::Add(uint64_t id, std::vector<float> vec) {
  if (vec.size() != config_.dim) {
    return Status::InvalidArgument("vector dimension mismatch");
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  RemoveLocked(id);  // overwrite semantics, matching FlatIndex
  InsertLocked(id, std::move(vec));
  MaybeCompactLocked();
  return Status::Ok();
}

bool HnswIndex::RemoveLocked(uint64_t id) {
  const auto it = slot_of_.find(id);
  if (it == slot_of_.end()) {
    return false;
  }
  nodes_[it->second].deleted = true;
  slot_of_.erase(it);
  --live_;
  if (live_ == 0) {
    // Nothing left to preserve: drop the whole graph instead of keeping a
    // structure made purely of tombstones.
    nodes_.clear();
    arena_.clear();
    qarena_.clear();
    scales_.clear();
    insert_epochs_.clear();
    insert_epoch_ = 0;
    entry_ = 0;
    entry_level_ = -1;
  }
  return true;
}

bool HnswIndex::Remove(uint64_t id) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (!RemoveLocked(id)) {
    return false;
  }
  MaybeCompactLocked();
  return true;
}

void HnswIndex::MaybeCompactLocked() {
  const size_t dead = nodes_.size() - live_;
  if (dead < config_.min_tombstones_to_compact) {
    return;
  }
  if (static_cast<double>(dead) <=
      config_.max_tombstone_fraction * static_cast<double>(nodes_.size())) {
    return;
  }
  CompactLocked();
}

void HnswIndex::CompactLocked() {
  // Survivors are re-inserted from the float form. In quantized mode the
  // dequantized values are exact multiples of the slot scale with the max
  // element on the ±127 rail, so requantization reproduces the identical
  // codes and scale — compaction is lossless either way.
  std::vector<std::pair<uint64_t, std::vector<float>>> survivors;
  survivors.reserve(live_);
  for (uint32_t slot = 0; slot < nodes_.size(); ++slot) {
    if (nodes_[slot].deleted) {
      continue;
    }
    std::vector<float> vec(config_.dim);
    if (config_.quantize_int8) {
      simd::DequantizeI8(QVecOf(slot), config_.dim, scales_[slot], vec.data());
    } else {
      std::copy(VecOf(slot), VecOf(slot) + config_.dim, vec.begin());
    }
    survivors.emplace_back(nodes_[slot].id, std::move(vec));
  }
  nodes_.clear();
  arena_.clear();
  qarena_.clear();
  scales_.clear();
  slot_of_.clear();
  insert_epochs_.clear();
  insert_epoch_ = 0;
  entry_ = 0;
  entry_level_ = -1;
  live_ = 0;
  for (auto& [id, vec] : survivors) {
    InsertLocked(id, std::move(vec));
  }
}

void HnswIndex::Compact() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  CompactLocked();
}

std::vector<SearchResult> HnswIndex::SearchLocked(const std::vector<float>& query, size_t k,
                                                  size_t ef) const {
  // The single-query path IS the batch core at batch size 1 over a
  // thread-local scratch: one traversal implementation (batch-vs-single
  // identity holds structurally), and the retained scratch makes repeated
  // Search calls allocation-free apart from the returned vector. The scratch
  // is thread_local so concurrent readers under the shared lock never share
  // state; it is shared across index instances on a thread, which is safe
  // because the epoch counter is monotonic (marks from any earlier search
  // can never equal a later query's epoch).
  std::vector<SearchResult> results;
  if (k == 0 || entry_level_ < 0 || query.size() != config_.dim) {
    return results;
  }
  static thread_local SearchScratch scratch;
  SearchBatchLocked(query.data(), 1, config_.dim, k, ef, scratch);
  results.assign(scratch.results.begin(), scratch.results.end());
  return results;
}

void HnswIndex::SearchBatchLocked(const float* queries, size_t num_queries, size_t query_dim,
                                  size_t k, size_t ef, SearchScratch& s) const {
  s.BeginOutput(num_queries);
  if (num_queries == 0) {
    return;
  }
  if (k == 0 || entry_level_ < 0 || query_dim != config_.dim) {
    return;  // offsets are all zero: every query reports an empty result range
  }
  // Visited high-watermark: the epoch buffer tracks nodes_.size() and would
  // otherwise only ever grow, pinning a peak-size buffer on long-lived
  // serving threads after the graph shrinks (eviction, compaction). Rebuild
  // it once capacity is far above what the graph needs; never fires while the
  // graph is at or near its peak, so steady state stays allocation-free.
  if (s.epochs.capacity() > config_.visited_shrink_floor &&
      s.epochs.capacity() / 4 > nodes_.size()) {
    std::vector<uint32_t>().swap(s.epochs);
    std::vector<uint16_t>().swap(s.visited_mask);
    s.epoch = 0;
  }
  if (s.epochs.size() < nodes_.size()) {
    s.GrowResize(s.epochs, nodes_.size());
    s.GrowResize(s.visited_mask, nodes_.size());
  }
  if (config_.quantize_int8) {
    s.GrowResize(s.q8, num_queries * config_.dim);
    s.GrowResize(s.q8_scales, num_queries);
    for (size_t i = 0; i < num_queries; ++i) {
      simd::QuantizeI8(queries + i * query_dim, config_.dim, s.q8.data() + i * config_.dim,
                       &s.q8_scales[i]);
    }
  }
  // Interleave width: enough in-flight queries to cover an arena-line miss
  // with the other queries' scoring work, few enough that the in-flight
  // working set (beam states + prefetched vectors) stays cache-resident.
  // int8 codes are 4x smaller than float vectors, so more queries fit before
  // the group starts evicting its own prefetches (12 and 16 measure within
  // noise of each other; 12 leaves more L1 headroom for the beam heaps).
  const size_t kInterleave = config_.quantize_int8 ? 12 : 8;
  if (s.beams.size() < std::min(num_queries, kInterleave)) {
    ++s.grows;
    s.beams.resize(std::min(num_queries, kInterleave));
  }
  if (s.heaps.empty()) {
    ++s.grows;
    s.heaps.resize(1);
  }
  const size_t ef_eff = std::max(ef, k);
  const auto query_ref = [&](size_t qi) {
    QueryRef q;
    q.f32 = queries + qi * query_dim;
    if (config_.quantize_int8) {
      q.i8 = s.q8.data() + qi * config_.dim;
      q.scale = s.q8_scales[qi];
    }
    return q;
  };
  for (size_t base = 0; base < num_queries; base += kInterleave) {
    const size_t group = std::min(kInterleave, num_queries - base);
    // One span per interleave group; args sum the group's layer-0 visited and
    // frontier-expansion counts (for a single-query call this is exactly the
    // old per-search span). Counters only tick while tracing is enabled so
    // the beam loop stays counter-free otherwise.
    TraceSpan span(TraceCategory::kHnswSearch);
    uint64_t visited = 0;
    uint64_t hops = 0;
    uint64_t* vis = span.active() ? &visited : nullptr;
    uint64_t* hop = span.active() ? &hops : nullptr;
    // One epoch per interleave group; which of the group's queries visited a
    // slot lives in the per-slot bitmask (bit g). A single epoch-per-slot
    // word cannot serve interleaved queries — query B's mark would overwrite
    // query A's and A would rescan the slot — while a stale group epoch
    // implicitly zeroes the mask, keeping the O(1)-reset property.
    if (++s.epoch == 0) {  // wrap-around: stale marks would alias, clear once
      std::fill(s.epochs.begin(), s.epochs.end(), 0);
      s.epoch = 1;
    }
    const uint32_t group_epoch = s.epoch;
    // Phase 1: lockstep greedy upper-layer descent. One round scans one
    // node's layer links per live query — the same neighbor-evaluation order
    // as the sequential GreedyStep (the scan list is fixed at round start
    // even when the position advances mid-scan), so every query lands on the
    // bit-identical layer-0 entry — while the other queries' scans overlap
    // each vector load the round's pre-pass prefetched.
    for (size_t g = 0; g < group; ++g) {
      SearchScratch::Beam& beam = s.beams[g];
      beam.candidates.clear();
      beam.results.clear();
      beam.found.clear();
      beam.pending.clear();
      beam.done = false;
      beam.cur = entry_;
      beam.layer = entry_level_;
      beam.best = SimQ(query_ref(base + g), entry_);
    }
    bool any_descending = entry_level_ >= 1;
    while (any_descending) {
      // Pre-pass: stream the head line of every neighbor vector each live
      // query is about to score this round.
      for (size_t g = 0; g < group; ++g) {
        const SearchScratch::Beam& beam = s.beams[g];
        if (beam.layer < 1) {
          continue;
        }
        for (uint32_t neighbor : nodes_[beam.cur].links[beam.layer]) {
          PrefetchLine(config_.quantize_int8 ? static_cast<const void*>(QVecOf(neighbor))
                                             : static_cast<const void*>(VecOf(neighbor)));
        }
      }
      any_descending = false;
      for (size_t g = 0; g < group; ++g) {
        SearchScratch::Beam& beam = s.beams[g];
        if (beam.layer < 1) {
          continue;
        }
        const QueryRef q = query_ref(base + g);
        const uint32_t scan_slot = beam.cur;
        bool improved = false;
        for (uint32_t neighbor : nodes_[scan_slot].links[beam.layer]) {
          const double sim = SimQ(q, neighbor);
          if (sim > beam.best) {
            beam.best = sim;
            beam.cur = neighbor;
            improved = true;
          }
        }
        if (improved) {
          PrefetchLine(&nodes_[beam.cur]);  // next round rescans from here
        } else {
          --beam.layer;  // converged at this layer; next round scans one lower
        }
        any_descending = any_descending || beam.layer >= 1;
      }
    }
    // Phase 1b (per query): seed the beam at the layer-0 entry under the
    // query's visited bit. beam.best IS the sequential path's entry
    // similarity — the same deterministic arithmetic over the same inputs.
    for (size_t g = 0; g < group; ++g) {
      SearchScratch::Beam& beam = s.beams[g];
      const uint32_t cur = beam.cur;
      const double entry_sim = beam.best;
      s.GrowPush(beam.candidates, {entry_sim, cur});  // one element: already a heap
      s.GrowPush(beam.results, {entry_sim, cur});
      if (s.epochs[cur] != group_epoch) {
        s.epochs[cur] = group_epoch;
        s.visited_mask[cur] = 0;
      }
      s.visited_mask[cur] |= static_cast<uint16_t>(1u << g);
      if (vis != nullptr) {
        ++*vis;
      }
    }
    // Phase 2: interleaved beam expansion. 2a pops each live query's best
    // frontier node, marks its unvisited neighbors and prefetches their
    // vectors (full span: float or int8 arena); 2b scores them — by then the
    // other queries' 2a passes have hidden the arena-line latency — and tops
    // off by prefetching the NEXT pop's graph node, so the following round's
    // adjacency chase starts warm. Per query the operation sequence is
    // exactly the single-query beam's; prefetches never change a result.
    const size_t vec_bytes =
        config_.quantize_int8 ? config_.dim : config_.dim * sizeof(float);
    bool any_active = true;
    while (any_active) {
      any_active = false;
      // 2a-pre: the next pop per live query is the frontier top; its Node
      // struct was prefetched at the end of the previous 2b, so reading the
      // adjacency pointer here is cheap — stream the links array in now,
      // while the other queries' marking passes below overlap the fill.
      for (size_t g = 0; g < group; ++g) {
        const SearchScratch::Beam& beam = s.beams[g];
        if (!beam.done && !beam.candidates.empty()) {
          const std::vector<uint32_t>& links = nodes_[beam.candidates.front().second].links[0];
          if (!links.empty()) {
            PrefetchSpan(links.data(), links.size() * sizeof(uint32_t));
          }
        }
      }
      // 2a-pop: per live query, pop the frontier top, decide beam
      // termination, stash the adjacency list, and issue write-intent
      // prefetches for its neighbors' visited words (random 4B/2B accesses
      // over up to 2M slots — the batch path's dominant misses). The marking
      // pass below consumes them only after every OTHER query's pop has run
      // in between, so the whole group's visited-word misses overlap instead
      // of each query stalling on its own.
      for (size_t g = 0; g < group; ++g) {
        SearchScratch::Beam& beam = s.beams[g];
        beam.pending.clear();
        beam.scan_links = nullptr;
        if (beam.done) {
          continue;
        }
        if (beam.candidates.empty()) {
          beam.done = true;
          continue;
        }
        const auto [sim, slot] = beam.candidates.front();
        std::pop_heap(beam.candidates.begin(), beam.candidates.end());
        beam.candidates.pop_back();
        if (beam.results.size() >= ef_eff && sim < beam.results.front().first) {
          beam.done = true;  // frontier can no longer improve the result set
          continue;
        }
        if (hop != nullptr) {
          ++*hop;
        }
        beam.scan_links = &nodes_[slot].links[0];
        for (uint32_t neighbor : *beam.scan_links) {
          PrefetchWrite(&s.epochs[neighbor]);
          PrefetchWrite(&s.visited_mask[neighbor]);
        }
        any_active = true;
      }
      if (!any_active) {
        break;
      }
      // 2a-mark: claim each popped node's unvisited neighbors. Queries mark
      // in the same per-query order as the sequential beam, and the visited
      // state is per-query (bit g) — the shared epoch word converges to the
      // same value whichever group member touches a slot first — so the
      // pending lists are bit-identical to the unsplit pass.
      for (size_t g = 0; g < group; ++g) {
        SearchScratch::Beam& beam = s.beams[g];
        if (beam.scan_links == nullptr) {
          continue;
        }
        const uint16_t bit = static_cast<uint16_t>(1u << g);
        for (uint32_t neighbor : *beam.scan_links) {
          if (s.epochs[neighbor] != group_epoch) {
            s.epochs[neighbor] = group_epoch;
            s.visited_mask[neighbor] = 0;
          }
          if ((s.visited_mask[neighbor] & bit) == 0) {
            s.visited_mask[neighbor] = static_cast<uint16_t>(s.visited_mask[neighbor] | bit);
            if (vis != nullptr) {
              ++*vis;
            }
            // Head of the vector only: a full-span prefetch of ~30 512-byte
            // float vectors here would flood the miss buffers and evict the
            // other interleaved queries' lines; the scoring pass below
            // streams the remaining lines one neighbor ahead instead.
            PrefetchLine(config_.quantize_int8 ? static_cast<const void*>(QVecOf(neighbor))
                                               : static_cast<const void*>(VecOf(neighbor)));
            s.GrowPush(beam.pending, neighbor);
          }
        }
      }
      // 2b: score the marked neighbors. Scoring a neighbor and pushing it
      // through the query's bounded heaps is identical in either arena; only
      // the ORDER queries take turns differs by arena (see below), and each
      // query always scores its own pending list front to back against its
      // own heaps, so either schedule is bit-identical to the sequential
      // single-query beam.
      const auto score_neighbor = [&](SearchScratch::Beam& beam, const QueryRef& q,
                                      uint32_t neighbor) {
        const double neighbor_sim = SimQ(q, neighbor);
        if (beam.results.size() < ef_eff || neighbor_sim > beam.results.front().first) {
          s.GrowPush(beam.candidates, {neighbor_sim, neighbor});
          std::push_heap(beam.candidates.begin(), beam.candidates.end());
          s.GrowPush(beam.results, {neighbor_sim, neighbor});
          std::push_heap(beam.results.begin(), beam.results.end(),
                         std::greater<std::pair<double, uint32_t>>{});
          if (beam.results.size() > ef_eff) {
            std::pop_heap(beam.results.begin(), beam.results.end(),
                          std::greater<std::pair<double, uint32_t>>{});
            beam.results.pop_back();
          }
        }
      };
      if (!config_.quantize_int8) {
        // Float arena: ROUND-ROBIN across the group, one neighbor per live
        // query per turn, so the full-span prefetch issued for a query's
        // next 512-byte vector has a whole group's worth of other queries'
        // dot products to hide behind before it is consumed. At group == 1
        // this degenerates to a plain one-ahead software pipeline.
        size_t max_pending = 0;
        for (size_t g = 0; g < group; ++g) {
          const SearchScratch::Beam& beam = s.beams[g];
          max_pending = std::max(max_pending, beam.pending.size());
          if (beam.pending.empty()) {
            if (!beam.done && !beam.candidates.empty()) {
              PrefetchLine(&nodes_[beam.candidates.front().second]);
            }
          } else {
            PrefetchSpan(VecOf(beam.pending[0]), vec_bytes);
          }
        }
        for (size_t p = 0; p < max_pending; ++p) {
          for (size_t g = 0; g < group; ++g) {
            SearchScratch::Beam& beam = s.beams[g];
            if (p >= beam.pending.size()) {
              continue;
            }
            if (p + 1 < beam.pending.size()) {
              PrefetchSpan(VecOf(beam.pending[p + 1]), vec_bytes);
            }
            score_neighbor(beam, query_ref(base + g), beam.pending[p]);
            if (p + 1 == beam.pending.size() && !beam.candidates.empty()) {
              // Last pending neighbor scored: warm the next round's pop
              // target so 2a-pre's adjacency read is cheap.
              PrefetchLine(&nodes_[beam.candidates.front().second]);
            }
          }
        }
      } else {
        // Int8 arena: per-query sequential scoring. A 128-byte code is
        // fully covered by the marking pass's line prefetch and the dot is
        // a handful of cycles, so round-robin turn-taking across a 16-wide
        // group costs more in bookkeeping than it hides in latency.
        for (size_t g = 0; g < group; ++g) {
          SearchScratch::Beam& beam = s.beams[g];
          if (beam.pending.empty()) {
            if (!beam.done && !beam.candidates.empty()) {
              PrefetchLine(&nodes_[beam.candidates.front().second]);
            }
            continue;
          }
          const QueryRef q = query_ref(base + g);
          for (const uint32_t neighbor : beam.pending) {
            score_neighbor(beam, q, neighbor);
          }
          // Warm the next round's pop target (2a-pre reads its adjacency
          // pointer) — by then every other query's scoring pass has run.
          if (!beam.candidates.empty()) {
            PrefetchLine(&nodes_[beam.candidates.front().second]);
          }
        }
      }
    }
    span.SetArgs(visited, hops);
    // Phase 3 (per query): drain the beam best-first, re-rank / filter
    // tombstones through the TopK-mirroring scratch heap, append to the flat
    // result arena.
    for (size_t g = 0; g < group; ++g) {
      const size_t qi = base + g;
      SearchScratch::Beam& beam = s.beams[g];
      while (!beam.results.empty()) {
        s.GrowPush(beam.found, beam.results.front());
        std::pop_heap(beam.results.begin(), beam.results.end(),
                      std::greater<std::pair<double, uint32_t>>{});
        beam.results.pop_back();
      }
      std::reverse(beam.found.begin(), beam.found.end());  // best-first
      auto& heap = s.heaps[0];
      heap.clear();
      if (config_.quantize_int8 && config_.rerank_k > 0) {
        // Exact re-rank: the beam ordered candidates by the quantized metric;
        // re-score the best rerank_k live ones against the full-precision
        // query (asymmetric f32 x i8 dot) so the final top-k ordering is free
        // of quantization noise on the query side.
        const size_t budget = std::max(config_.rerank_k, k);
        size_t rescored = 0;
        const float* qf = queries + qi * query_dim;
        // The id/deleted reads below are random Node loads the beam last
        // touched many pops ago; an 8-ahead pipeline keeps them in flight.
        const size_t nf = beam.found.size();
        for (size_t j = 0; j < nf && j < 8; ++j) {
          PrefetchLine(&nodes_[beam.found[j].second]);
        }
        for (size_t j = 0; j < nf; ++j) {
          if (j + 8 < nf) {
            PrefetchLine(&nodes_[beam.found[j + 8].second]);
          }
          const auto& scored = beam.found[j];
          if (nodes_[scored.second].deleted) {
            continue;
          }
          if (rescored >= budget) {
            break;
          }
          const double exact = simd::DotF32I8(qf, QVecOf(scored.second), config_.dim) *
                               static_cast<double>(scales_[scored.second]);
          ScratchTopK::Push(heap, k, exact, nodes_[scored.second].id, s);
          ++rescored;
        }
        g_rerank_queries.fetch_add(1, std::memory_order_relaxed);
        g_rerank_candidates.fetch_add(rescored, std::memory_order_relaxed);
      } else {
        const size_t nf = beam.found.size();
        for (size_t j = 0; j < nf && j < 8; ++j) {
          PrefetchLine(&nodes_[beam.found[j].second]);
        }
        for (size_t j = 0; j < nf; ++j) {
          if (j + 8 < nf) {
            PrefetchLine(&nodes_[beam.found[j + 8].second]);
          }
          const auto& scored = beam.found[j];
          if (!nodes_[scored.second].deleted) {
            ScratchTopK::Push(heap, k, scored.first, nodes_[scored.second].id, s);
          }
        }
      }
      ScratchTopK::DrainDescending(heap, &s.results, s);
      s.EndQuery(qi);
    }
  }
}

void HnswIndex::SearchBatch(const float* queries, size_t num_queries, size_t query_dim,
                            size_t k, SearchScratch* scratch) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  SearchBatchLocked(queries, num_queries, query_dim, k, config_.ef_search, *scratch);
}

void HnswIndex::SearchBatchEf(const float* queries, size_t num_queries, size_t query_dim,
                              size_t k, size_t ef, SearchScratch* scratch) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  SearchBatchLocked(queries, num_queries, query_dim, k, ef, *scratch);
}

std::vector<SearchResult> HnswIndex::Search(const std::vector<float>& query, size_t k) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return SearchLocked(query, k, config_.ef_search);
}

std::vector<SearchResult> HnswIndex::SearchEf(const std::vector<float>& query, size_t k,
                                              size_t ef) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return SearchLocked(query, k, ef);
}

bool HnswIndex::GetVector(uint64_t id, std::vector<float>* out) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const auto it = slot_of_.find(id);
  if (it == slot_of_.end()) {
    return false;
  }
  if (config_.quantize_int8) {
    out->resize(config_.dim);
    simd::DequantizeI8(QVecOf(it->second), config_.dim, scales_[it->second], out->data());
  } else {
    out->assign(VecOf(it->second), VecOf(it->second) + config_.dim);
  }
  return true;
}

size_t HnswIndex::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return live_;
}

size_t HnswIndex::tombstones() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return nodes_.size() - live_;
}

int HnswIndex::max_level() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return entry_level_;
}

size_t HnswIndex::arena_bytes() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return arena_.size() * sizeof(float) + qarena_.size() * sizeof(int8_t) +
         scales_.size() * sizeof(float);
}

void HnswIndex::SaveGraph(std::string* out) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  ByteWriter w;
  w.PutU32(kGraphFormatVersion);
  w.PutU8(config_.quantize_int8 ? 1 : 0);
  w.PutU64(config_.dim);
  w.PutU64(config_.max_neighbors);
  w.PutU64(nodes_.size());
  w.PutU64(live_);
  w.PutU32(entry_);
  w.PutI32(entry_level_);
  const RngState rng = rng_.SaveState();
  for (uint64_t s : rng.s) {
    w.PutU64(s);
  }
  w.PutDouble(rng.cached_normal);
  w.PutU8(rng.has_cached_normal ? 1 : 0);
  for (const Node& node : nodes_) {
    w.PutU64(node.id);
    w.PutI32(node.level);
    w.PutU8(node.deleted ? 1 : 0);
    for (const std::vector<uint32_t>& layer : node.links) {
      w.PutU32(static_cast<uint32_t>(layer.size()));
      for (uint32_t link : layer) {
        w.PutU32(link);
      }
    }
  }
  static_assert(sizeof(float) == 4, "IEEE-754 float expected");
  if (config_.quantize_int8) {
    // Quantized image: the raw code arena plus per-slot scales. Storing the
    // codes (not dequantized floats) makes restore exact by construction.
    w.PutU64(qarena_.size());
    w.PutBytes(qarena_.data(), qarena_.size());
    w.PutBytes(scales_.data(), scales_.size() * sizeof(float));
  } else {
    // Arena as one raw little-endian float block (the dominant payload).
    w.PutU64(arena_.size());
    w.PutBytes(arena_.data(), arena_.size() * sizeof(float));
  }
  *out = w.TakeBytes();
}

bool HnswIndex::LoadGraph(const std::string& blob) {
  // Parse and validate into locals first: a mismatched or corrupted image
  // must leave the index exactly as it was (the caller rebuilds instead).
  ByteReader r(blob);
  const uint32_t version = r.GetU32();
  if (version != kGraphFormatVersion && version != 1) {
    return false;
  }
  // v1 images predate quantization and are implicitly float; a quantized
  // index cannot adopt one (the caller rebuilds, requantizing as it goes).
  const bool quantized = version >= 2 && r.GetU8() != 0;
  if (quantized != config_.quantize_int8) {
    return false;
  }
  const uint64_t dim = r.GetU64();
  const uint64_t max_neighbors = r.GetU64();
  const uint64_t node_count = r.GetU64();
  const uint64_t live = r.GetU64();
  const uint32_t entry = r.GetU32();
  const int32_t entry_level = r.GetI32();
  RngState rng;
  for (auto& s : rng.s) {
    s = r.GetU64();
  }
  rng.cached_normal = r.GetDouble();
  rng.has_cached_normal = r.GetU8() != 0;
  // node_count is also bounded by the blob itself (every node costs >= 13
  // bytes), which keeps the reserve() below sane on corrupted input.
  if (!r.ok() || dim != config_.dim || max_neighbors != config_.max_neighbors ||
      live > node_count || node_count > blob.size()) {
    return false;
  }

  std::vector<Node> nodes;
  nodes.reserve(node_count);
  std::unordered_map<uint64_t, uint32_t> slot_of;
  slot_of.reserve(live);
  for (uint64_t slot = 0; slot < node_count; ++slot) {
    Node node;
    node.id = r.GetU64();
    node.level = r.GetI32();
    node.deleted = r.GetU8() != 0;
    if (!r.ok() || node.level < 0 || node.level > kMaxLevel) {
      return false;
    }
    node.links.resize(static_cast<size_t>(node.level) + 1);
    for (auto& layer : node.links) {
      const uint32_t n = r.GetU32();
      if (!r.ok() || n > node_count) {
        return false;
      }
      layer.resize(n);
      for (auto& link : layer) {
        link = r.GetU32();
        if (link >= node_count) {
          return false;
        }
      }
    }
    if (!node.deleted && !slot_of.emplace(node.id, static_cast<uint32_t>(slot)).second) {
      return false;  // duplicate live id
    }
    nodes.push_back(std::move(node));
  }
  // Structural validation pass (needs every node's level, so it runs after
  // parsing): a link at layer l must target a node whose links reach layer l,
  // or the first traversal through it would index out of bounds.
  for (const Node& node : nodes) {
    for (size_t layer = 0; layer < node.links.size(); ++layer) {
      for (uint32_t link : node.links[layer]) {
        if (static_cast<size_t>(nodes[link].level) < layer) {
          return false;
        }
      }
    }
  }
  const uint64_t arena_len = r.GetU64();
  if (!r.ok() || arena_len != node_count * config_.dim) {
    return false;
  }
  std::vector<float> arena;
  std::vector<int8_t> qarena;
  std::vector<float> scales;
  if (quantized) {
    if (r.remaining() != arena_len + node_count * 4) {
      return false;
    }
    qarena.resize(static_cast<size_t>(arena_len));
    scales.resize(static_cast<size_t>(node_count));
    if (!r.GetBytes(qarena.data(), qarena.size()) ||
        !r.GetBytes(scales.data(), scales.size() * sizeof(float))) {
      return false;
    }
  } else {
    if (r.remaining() != arena_len * 4) {
      return false;
    }
    arena.resize(static_cast<size_t>(arena_len));
    if (!r.GetBytes(arena.data(), arena.size() * sizeof(float))) {
      return false;
    }
  }
  if (slot_of.size() != live ||
      (node_count > 0 && (entry >= node_count || entry_level < 0 || entry_level > kMaxLevel)) ||
      (node_count == 0 && entry_level != -1)) {
    return false;
  }

  std::unique_lock<std::shared_mutex> lock(mu_);
  nodes_ = std::move(nodes);
  arena_ = std::move(arena);
  qarena_ = std::move(qarena);
  scales_ = std::move(scales);
  slot_of_ = std::move(slot_of);
  entry_ = entry;
  entry_level_ = entry_level;
  live_ = static_cast<size_t>(live);
  rng_.RestoreState(rng);
  insert_epochs_.assign(nodes_.size(), 0);
  insert_epoch_ = 0;
  return true;
}

}  // namespace iccache
