#include "src/index/hnsw.h"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <queue>
#include <utility>

#include "src/common/mathutil.h"
#include "src/common/topk.h"

namespace iccache {

namespace {

// Hard cap on sampled levels; with mL = 1/ln(16) the probability of level 24
// is ~16^-24, so this only guards against pathological rng output.
constexpr int kMaxLevel = 24;

// Inner product with float accumulators, unrolled 4-wide. The shared
// mathutil Dot() accumulates in double, which forces a convert-per-element
// dependency chain; this kernel is what every graph hop pays, so it gets the
// vectorizable form (the ~1e-7 float rounding is far below ANN noise).
double DotFast(const float* x, const float* y, size_t n) {
  float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 += x[i] * y[i];
    acc1 += x[i + 1] * y[i + 1];
    acc2 += x[i + 2] * y[i + 2];
    acc3 += x[i + 3] * y[i + 3];
  }
  for (; i < n; ++i) {
    acc0 += x[i] * y[i];
  }
  return static_cast<double>((acc0 + acc1) + (acc2 + acc3));
}

inline void PrefetchVec(const float* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p);
  __builtin_prefetch(p + 16);
#else
  (void)p;
#endif
}

}  // namespace

HnswIndex::HnswIndex(HnswIndexConfig config)
    : config_(config),
      level_multiplier_(1.0 /
                        std::log(static_cast<double>(std::max<size_t>(2, config.max_neighbors)))),
      rng_(config.seed) {}

int HnswIndex::SampleLevel() {
  // Geometric-ish level distribution: floor(-ln(U) * mL), U in (0, 1].
  const double u = std::max(1e-12, 1.0 - rng_.Uniform());
  const int level = static_cast<int>(-std::log(u) * level_multiplier_);
  return std::min(level, kMaxLevel);
}

double HnswIndex::Sim(const float* a, const float* b) const {
  return DotFast(a, b, config_.dim);
}

uint32_t HnswIndex::GreedyStep(const float* query, uint32_t slot, int layer) const {
  double best = Sim(query, VecOf(slot));
  bool improved = true;
  while (improved) {
    improved = false;
    for (uint32_t neighbor : nodes_[slot].links[layer]) {
      const double sim = Sim(query, VecOf(neighbor));
      if (sim > best) {
        best = sim;
        slot = neighbor;
        improved = true;
      }
    }
  }
  return slot;
}

std::vector<HnswIndex::ScoredSlot> HnswIndex::SearchLayer(const float* query, uint32_t entry,
                                                          int layer, size_t ef,
                                                          std::vector<uint32_t>& epochs,
                                                          uint32_t epoch) const {
  // candidates: max-heap on similarity (frontier to expand).
  std::priority_queue<std::pair<double, uint32_t>> candidates;
  // results: min-heap on similarity, bounded to ef (current best set).
  std::priority_queue<std::pair<double, uint32_t>, std::vector<std::pair<double, uint32_t>>,
                      std::greater<std::pair<double, uint32_t>>>
      results;

  const double entry_sim = Sim(query, VecOf(entry));
  candidates.emplace(entry_sim, entry);
  results.emplace(entry_sim, entry);
  epochs[entry] = epoch;

  while (!candidates.empty()) {
    const auto [sim, slot] = candidates.top();
    candidates.pop();
    if (results.size() >= ef && sim < results.top().first) {
      break;  // frontier can no longer improve the result set
    }
    const std::vector<uint32_t>& links = nodes_[slot].links[layer];
    // Warm the arena lines for the whole neighborhood before evaluating it:
    // graph hops are random access, and the evaluation loop would otherwise
    // stall on every line.
    for (uint32_t neighbor : links) {
      if (epochs[neighbor] != epoch) {
        PrefetchVec(VecOf(neighbor));
      }
    }
    for (uint32_t neighbor : links) {
      if (epochs[neighbor] == epoch) {
        continue;
      }
      epochs[neighbor] = epoch;
      const double neighbor_sim = Sim(query, VecOf(neighbor));
      if (results.size() < ef || neighbor_sim > results.top().first) {
        candidates.emplace(neighbor_sim, neighbor);
        results.emplace(neighbor_sim, neighbor);
        if (results.size() > ef) {
          results.pop();
        }
      }
    }
  }

  std::vector<ScoredSlot> out;
  out.reserve(results.size());
  while (!results.empty()) {
    out.push_back(ScoredSlot{results.top().first, results.top().second});
    results.pop();
  }
  std::reverse(out.begin(), out.end());  // best-first
  return out;
}

std::vector<uint32_t> HnswIndex::SelectNeighbors(const std::vector<ScoredSlot>& candidates,
                                                 size_t max_count) const {
  std::vector<uint32_t> selected;
  selected.reserve(max_count);
  for (const ScoredSlot& candidate : candidates) {
    if (selected.size() >= max_count) {
      break;
    }
    // Keep only candidates closer to the query than to any kept neighbor:
    // this spreads links across directions instead of clustering them on the
    // nearest blob (no backfill of pruned candidates — redundant links waste
    // degree slots that long-range edges need).
    bool diverse = true;
    for (uint32_t kept : selected) {
      if (Sim(VecOf(candidate.slot), VecOf(kept)) > candidate.sim) {
        diverse = false;
        break;
      }
    }
    if (diverse) {
      selected.push_back(candidate.slot);
    }
  }
  return selected;
}

void HnswIndex::ShrinkLinks(uint32_t slot, int layer) {
  std::vector<uint32_t>& links = nodes_[slot].links[layer];
  const size_t cap = LayerCap(layer);
  if (links.size() <= cap) {
    return;
  }
  std::vector<ScoredSlot> scored;
  scored.reserve(links.size());
  for (uint32_t neighbor : links) {
    scored.push_back(ScoredSlot{Sim(VecOf(slot), VecOf(neighbor)), neighbor});
  }
  std::sort(scored.begin(), scored.end(), [](const ScoredSlot& a, const ScoredSlot& b) {
    if (a.sim != b.sim) {
      return a.sim > b.sim;
    }
    return a.slot < b.slot;
  });
  links = SelectNeighbors(scored, cap);
}

void HnswIndex::InsertLocked(uint64_t id, std::vector<float> vec) {
  const int level = SampleLevel();
  const uint32_t slot = static_cast<uint32_t>(nodes_.size());
  Node node;
  node.id = id;
  node.level = level;
  node.links.resize(static_cast<size_t>(level) + 1);
  nodes_.push_back(std::move(node));
  arena_.insert(arena_.end(), vec.begin(), vec.end());
  slot_of_[id] = slot;
  ++live_;
  insert_epochs_.push_back(0);

  if (entry_level_ < 0) {
    entry_ = slot;
    entry_level_ = level;
    return;
  }

  // Stable for the duration of this insert: arena_ only grows on the next Add.
  const float* query = VecOf(slot);
  uint32_t cur = entry_;
  for (int layer = entry_level_; layer > level; --layer) {
    cur = GreedyStep(query, cur, layer);
  }
  for (int layer = std::min(level, entry_level_); layer >= 0; --layer) {
    ++insert_epoch_;
    const std::vector<ScoredSlot> found =
        SearchLayer(query, cur, layer, std::max<size_t>(1, config_.ef_construction),
                    insert_epochs_, insert_epoch_);
    cur = found.empty() ? cur : found[0].slot;
    const std::vector<uint32_t> neighbors = SelectNeighbors(found, config_.max_neighbors);
    for (uint32_t neighbor : neighbors) {
      nodes_[slot].links[layer].push_back(neighbor);
      nodes_[neighbor].links[layer].push_back(slot);
      ShrinkLinks(neighbor, layer);
    }
  }
  if (level > entry_level_) {
    entry_ = slot;
    entry_level_ = level;
  }
}

Status HnswIndex::Add(uint64_t id, std::vector<float> vec) {
  if (vec.size() != config_.dim) {
    return Status::InvalidArgument("vector dimension mismatch");
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  RemoveLocked(id);  // overwrite semantics, matching FlatIndex
  InsertLocked(id, std::move(vec));
  MaybeCompactLocked();
  return Status::Ok();
}

bool HnswIndex::RemoveLocked(uint64_t id) {
  const auto it = slot_of_.find(id);
  if (it == slot_of_.end()) {
    return false;
  }
  nodes_[it->second].deleted = true;
  slot_of_.erase(it);
  --live_;
  if (live_ == 0) {
    // Nothing left to preserve: drop the whole graph instead of keeping a
    // structure made purely of tombstones.
    nodes_.clear();
    arena_.clear();
    insert_epochs_.clear();
    insert_epoch_ = 0;
    entry_ = 0;
    entry_level_ = -1;
  }
  return true;
}

bool HnswIndex::Remove(uint64_t id) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (!RemoveLocked(id)) {
    return false;
  }
  MaybeCompactLocked();
  return true;
}

void HnswIndex::MaybeCompactLocked() {
  const size_t dead = nodes_.size() - live_;
  if (dead < config_.min_tombstones_to_compact) {
    return;
  }
  if (static_cast<double>(dead) <=
      config_.max_tombstone_fraction * static_cast<double>(nodes_.size())) {
    return;
  }
  CompactLocked();
}

void HnswIndex::CompactLocked() {
  std::vector<std::pair<uint64_t, std::vector<float>>> survivors;
  survivors.reserve(live_);
  for (uint32_t slot = 0; slot < nodes_.size(); ++slot) {
    if (!nodes_[slot].deleted) {
      survivors.emplace_back(nodes_[slot].id,
                             std::vector<float>(VecOf(slot), VecOf(slot) + config_.dim));
    }
  }
  nodes_.clear();
  arena_.clear();
  slot_of_.clear();
  insert_epochs_.clear();
  insert_epoch_ = 0;
  entry_ = 0;
  entry_level_ = -1;
  live_ = 0;
  for (auto& [id, vec] : survivors) {
    InsertLocked(id, std::move(vec));
  }
}

void HnswIndex::Compact() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  CompactLocked();
}

std::vector<SearchResult> HnswIndex::SearchLocked(const std::vector<float>& query, size_t k,
                                                  size_t ef) const {
  std::vector<SearchResult> results;
  if (k == 0 || entry_level_ < 0 || query.size() != config_.dim) {
    return results;
  }
  uint32_t cur = entry_;
  for (int layer = entry_level_; layer >= 1; --layer) {
    cur = GreedyStep(query.data(), cur, layer);
  }
  // Reader-side visited scratch: thread_local so concurrent searches under
  // the shared lock never share it, epoch-reset so a query costs O(ef*degree)
  // instead of an O(N) clear. The buffer is shared across index instances on
  // a thread, which is safe: the epoch counter is monotonic, so marks from
  // any earlier search can never equal the current epoch.
  static thread_local std::vector<uint32_t> epochs;
  static thread_local uint32_t epoch = 0;
  if (epochs.size() < nodes_.size()) {
    epochs.resize(nodes_.size(), 0);
  }
  if (++epoch == 0) {  // wrap-around: stale marks would alias, clear once
    std::fill(epochs.begin(), epochs.end(), 0);
    epoch = 1;
  }
  const std::vector<ScoredSlot> found =
      SearchLayer(query.data(), cur, 0, std::max(ef, k), epochs, epoch);
  TopK<uint64_t> top(k);
  for (const ScoredSlot& scored : found) {
    if (!nodes_[scored.slot].deleted) {
      top.Push(scored.sim, nodes_[scored.slot].id);
    }
  }
  for (auto& [score, id] : top.TakeSortedDescending()) {
    results.push_back(SearchResult{id, score});
  }
  return results;
}

std::vector<SearchResult> HnswIndex::Search(const std::vector<float>& query, size_t k) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return SearchLocked(query, k, config_.ef_search);
}

std::vector<SearchResult> HnswIndex::SearchEf(const std::vector<float>& query, size_t k,
                                              size_t ef) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return SearchLocked(query, k, ef);
}

size_t HnswIndex::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return live_;
}

size_t HnswIndex::tombstones() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return nodes_.size() - live_;
}

int HnswIndex::max_level() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return entry_level_;
}

}  // namespace iccache
