#include "src/index/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/simd.h"

namespace iccache {

namespace {

size_t NearestCentroid(const std::vector<float>& point,
                       const std::vector<std::vector<float>>& centroids, double* best_dist) {
  size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < centroids.size(); ++c) {
    const double d = simd::L2Sq(point.data(), centroids[c].data(), point.size());
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  if (best_dist != nullptr) {
    *best_dist = best_d;
  }
  return best;
}

// k-means++ seeding: first centroid uniform, the rest proportional to the
// squared distance to the nearest chosen centroid.
std::vector<std::vector<float>> SeedCentroids(const std::vector<std::vector<float>>& points,
                                              size_t k, Rng& rng) {
  std::vector<std::vector<float>> centroids;
  centroids.reserve(k);
  centroids.push_back(points[rng.UniformInt(points.size())]);
  std::vector<double> dist_sq(points.size(), 0.0);
  while (centroids.size() < k) {
    double total = 0.0;
    for (size_t i = 0; i < points.size(); ++i) {
      const double d = simd::L2Sq(points[i].data(), centroids.back().data(), points[i].size());
      if (centroids.size() == 1 || d < dist_sq[i]) {
        dist_sq[i] = d;
      }
      total += dist_sq[i];
    }
    if (total <= 0.0) {
      // All remaining points coincide with chosen centroids; duplicate one.
      centroids.push_back(points[rng.UniformInt(points.size())]);
      continue;
    }
    double target = rng.Uniform() * total;
    size_t chosen = points.size() - 1;
    for (size_t i = 0; i < points.size(); ++i) {
      target -= dist_sq[i];
      if (target <= 0.0) {
        chosen = i;
        break;
      }
    }
    centroids.push_back(points[chosen]);
  }
  return centroids;
}

}  // namespace

size_t OptimalClusterCount(size_t n) {
  if (n <= 1) {
    return 1;
  }
  return static_cast<size_t>(std::max(1.0, std::round(std::sqrt(static_cast<double>(n)))));
}

KMeansResult KMeansCluster(const std::vector<std::vector<float>>& points, size_t k, Rng& rng,
                           const KMeansOptions& options) {
  KMeansResult result;
  if (points.empty()) {
    return result;
  }
  k = std::max<size_t>(1, std::min(k, points.size()));
  const size_t dim = points[0].size();

  result.centroids = SeedCentroids(points, k, rng);
  result.assignments.assign(points.size(), 0);

  double prev_inertia = std::numeric_limits<double>::infinity();
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;

    // Assignment step.
    double inertia = 0.0;
    for (size_t i = 0; i < points.size(); ++i) {
      double d = 0.0;
      result.assignments[i] = NearestCentroid(points[i], result.centroids, &d);
      inertia += d;
    }
    result.inertia = inertia;

    // Update step.
    std::vector<std::vector<double>> sums(k, std::vector<double>(dim, 0.0));
    std::vector<size_t> counts(k, 0);
    for (size_t i = 0; i < points.size(); ++i) {
      const size_t c = result.assignments[i];
      ++counts[c];
      for (size_t d = 0; d < dim; ++d) {
        sums[c][d] += points[i][d];
      }
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed empty clusters from a random point to keep k live clusters.
        result.centroids[c] = points[rng.UniformInt(points.size())];
        continue;
      }
      for (size_t d = 0; d < dim; ++d) {
        result.centroids[c][d] = static_cast<float>(sums[c][d] / static_cast<double>(counts[c]));
      }
    }

    if (prev_inertia < std::numeric_limits<double>::infinity()) {
      const double rel_improvement = (prev_inertia - inertia) / std::max(prev_inertia, 1e-12);
      if (rel_improvement >= 0.0 && rel_improvement < options.tolerance) {
        break;
      }
    }
    prev_inertia = inertia;
  }
  return result;
}

}  // namespace iccache
