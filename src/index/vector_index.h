// Vector similarity-search substrate (stand-in for the paper's GPU FAISS
// deployment, section 5). Two implementations share one interface:
//
//  * FlatIndex    — exact brute-force search; the correctness reference.
//  * KMeansIndex  — inverted-file index over K-Means clusters with the paper's
//                   K = sqrt(N) sizing (section 4.1); approximate but probes
//                   only nprobe clusters per query.
//
// Vectors are expected to be L2-normalized (the HashingEmbedder guarantees
// this), so the similarity score is the inner product == cosine similarity.
#ifndef SRC_INDEX_VECTOR_INDEX_H_
#define SRC_INDEX_VECTOR_INDEX_H_

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"

namespace iccache {

struct SearchResult {
  uint64_t id = 0;
  double score = 0.0;  // cosine similarity, higher is better
};

// Reusable per-thread scratch for the batched search path of every backend.
// Every buffer retains its capacity across batches, so once warmed up a
// steady-state SearchBatch performs ZERO heap allocations per query; `grows`
// counts scratch reallocations and must stop advancing in steady state (the
// batch tests and the retrieval bench acceptance assert exactly that).
// Not thread-safe: one scratch per thread.
struct SearchScratch {
  uint64_t grows = 0;  // scratch-buffer reallocations since construction

  // --- Flat result arena ---------------------------------------------------
  // Results for query i of the last batch occupy
  // results[offsets[i] .. offsets[i+1]), sorted best-first.
  std::vector<SearchResult> results;
  std::vector<size_t> offsets;

  // --- Bounded top-k heaps (flat scan, kmeans members, hnsw rerank) --------
  std::vector<std::vector<std::pair<double, uint64_t>>> heaps;
  // KMeans probe-selection scratch (one query at a time).
  std::vector<std::pair<double, uint64_t>> cluster_heap;
  std::vector<SearchResult> cluster_order;

  // --- HNSW beam state -----------------------------------------------------
  // Epoch-reset visited set shared by the batch's interleaved queries: slot n
  // was visited by interleave-group member g iff epochs[n] holds the group's
  // epoch AND bit g of visited_mask[n] is set. The mask is what lets up to
  // sixteen in-flight queries share one buffer without clobbering each
  // other's marks; a stale epoch implicitly clears the mask, so nothing is
  // ever rescanned between groups.
  std::vector<uint32_t> epochs;
  std::vector<uint16_t> visited_mask;
  uint32_t epoch = 0;
  // Quantized query codes (num_queries * dim) + per-query scales, for int8
  // arenas.
  std::vector<int8_t> q8;
  std::vector<float> q8_scales;
  struct Beam {
    std::vector<std::pair<double, uint32_t>> candidates;  // max-heap frontier
    std::vector<std::pair<double, uint32_t>> results;     // min-heap, bounded ef
    std::vector<std::pair<double, uint32_t>> found;       // drained best-first
    std::vector<uint32_t> pending;  // neighbors marked this round, to score
    // Adjacency list popped this round (hnsw): set by the pop pass, consumed
    // by the marking pass after every other query's pop has run in between —
    // the gap is what gives the pop pass's visited-word prefetches time to
    // land. Null when this query popped nothing this round.
    const std::vector<uint32_t>* scan_links = nullptr;
    bool done = false;
    // Lockstep greedy-descent position (upper layers, before the beam runs).
    uint32_t cur = 0;
    int layer = 0;
    double best = 0.0;
  };
  std::vector<Beam> beams;

  template <typename T>
  void GrowResize(std::vector<T>& v, size_t n) {
    if (n > v.capacity()) {
      ++grows;
    }
    v.resize(n);
  }
  template <typename T>
  void GrowPush(std::vector<T>& v, T value) {
    if (v.size() == v.capacity()) {
      ++grows;
    }
    v.push_back(std::move(value));
  }

  void BeginOutput(size_t num_queries) {
    results.clear();
    if (num_queries + 1 > offsets.capacity()) {
      ++grows;
    }
    offsets.assign(num_queries + 1, 0);
  }
  // Records the end of query i's result range (call after appending them).
  void EndQuery(size_t i) { offsets[i + 1] = results.size(); }

  const SearchResult* ResultsOf(size_t i) const { return results.data() + offsets[i]; }
  size_t ResultCountOf(size_t i) const { return offsets[i + 1] - offsets[i]; }
};

// Heap operations mirroring common/topk.h's TopK<uint64_t> EXACTLY — the same
// MinFirst comparator and the same emplace_back+push_heap / pop_heap+pop_back
// sequences std::priority_queue performs — but over a caller-retained buffer,
// so the batched paths reuse capacity across queries while reproducing the
// single-query path's equal-score tie-breaks bit-for-bit.
struct ScratchTopK {
  using Entry = std::pair<double, uint64_t>;
  struct MinFirst {
    bool operator()(const Entry& a, const Entry& b) const { return a.first > b.first; }
  };

  static void Push(std::vector<Entry>& heap, size_t k, double score, uint64_t payload,
                   SearchScratch& scratch) {
    if (k == 0) {
      return;
    }
    if (heap.size() < k) {
      scratch.GrowPush(heap, Entry{score, payload});
      std::push_heap(heap.begin(), heap.end(), MinFirst{});
      return;
    }
    if (score > heap.front().first) {
      std::pop_heap(heap.begin(), heap.end(), MinFirst{});
      heap.pop_back();
      heap.emplace_back(score, payload);
      std::push_heap(heap.begin(), heap.end(), MinFirst{});
    }
  }

  // Drains the heap, appending (id, score) best-first to *out — the exact
  // mirror of TopK::TakeSortedDescending (pop worst-first, then reverse).
  static void DrainDescending(std::vector<Entry>& heap, std::vector<SearchResult>* out,
                              SearchScratch& scratch) {
    const size_t first = out->size();
    while (!heap.empty()) {
      scratch.GrowPush(*out, SearchResult{heap.front().second, heap.front().first});
      std::pop_heap(heap.begin(), heap.end(), MinFirst{});
      heap.pop_back();
    }
    std::reverse(out->begin() + static_cast<ptrdiff_t>(first), out->end());
  }
};

class VectorIndex {
 public:
  virtual ~VectorIndex() = default;

  // Inserts (or overwrites) the vector for id.
  virtual Status Add(uint64_t id, std::vector<float> vec) = 0;

  // Removes id; returns false when absent.
  virtual bool Remove(uint64_t id) = 0;

  // Returns up to k nearest neighbours sorted best-first.
  virtual std::vector<SearchResult> Search(const std::vector<float>& query, size_t k) const = 0;

  // Batched search over `num_queries` contiguous queries (query i at
  // queries[i*query_dim .. (i+1)*query_dim)). Results land in the scratch's
  // flat arena: scratch->ResultsOf(i) / ResultCountOf(i). Guaranteed
  // bit-identical to calling Search(query_i, k) per query — batching changes
  // WHEN work happens, never WHAT is computed. The base implementation loops
  // over Search; backends override with blocked/interleaved multi-query
  // kernels that do zero steady-state allocations.
  virtual void SearchBatch(const float* queries, size_t num_queries, size_t query_dim, size_t k,
                           SearchScratch* scratch) const;

  // Copies the stored vector for id into *out; false when absent. Used by
  // the persistence subsystem to export each example's embedding alongside
  // its lifecycle record.
  virtual bool GetVector(uint64_t id, std::vector<float>* out) const = 0;

  virtual size_t size() const = 0;
};

// Exact brute-force index. Vectors live in one contiguous slot-major arena
// (`dim` floats per slot, swap-to-back removal), so the scan is a single
// sequential sweep the shared SIMD dot kernel can stream through — the same
// layout discipline as the HNSW arena.
class FlatIndex : public VectorIndex {
 public:
  explicit FlatIndex(size_t dim);

  Status Add(uint64_t id, std::vector<float> vec) override;
  bool Remove(uint64_t id) override;
  std::vector<SearchResult> Search(const std::vector<float>& query, size_t k) const override;
  // Blocked multi-query scan: queries sweep the arena one block at a time so
  // a hot block is scored against the whole batch while it sits in cache.
  void SearchBatch(const float* queries, size_t num_queries, size_t query_dim, size_t k,
                   SearchScratch* scratch) const override;
  bool GetVector(uint64_t id, std::vector<float>* out) const override;
  size_t size() const override { return slot_of_.size(); }

  // Direct access for diagnostics: the contiguous dim()-length vector for id,
  // nullptr when absent. Invalidated by the next Add/Remove.
  const float* Find(uint64_t id) const;

  size_t dim() const { return dim_; }

 private:
  const float* VecOf(size_t slot) const { return arena_.data() + slot * dim_; }

  size_t dim_;
  // Dense storage with swap-to-back removal; ids_[s]'s vector occupies
  // arena_[s*dim, (s+1)*dim).
  std::vector<uint64_t> ids_;
  std::vector<float> arena_;
  std::unordered_map<uint64_t, size_t> slot_of_;
};

struct KMeansIndexConfig {
  size_t dim = 128;
  // Number of clusters probed per query. The paper probes the nearest
  // centroid; probing a couple more trades a little compute for recall.
  size_t nprobe = 3;
  // Rebuild clustering when the index grows by this factor since last build.
  double rebuild_growth_factor = 2.0;
  // Below this size, brute force beats clustering; stay flat.
  size_t min_points_to_cluster = 64;
  uint64_t seed = 0x5eed;
};

// Inverted-file index over K-Means clusters (K = sqrt(N) at build time).
// Vector storage is the same contiguous slot-major arena as FlatIndex (the
// old map-of-vectors layout defeated prefetching and SIMD loads); the
// cluster structures only hold ids.
class KMeansIndex : public VectorIndex {
 public:
  explicit KMeansIndex(KMeansIndexConfig config = {});

  Status Add(uint64_t id, std::vector<float> vec) override;
  bool Remove(uint64_t id) override;
  std::vector<SearchResult> Search(const std::vector<float>& query, size_t k) const override;
  // Blocked multi-query scan below the clustering threshold; per-query probes
  // over reused scratch (no allocations) once clustered.
  void SearchBatch(const float* queries, size_t num_queries, size_t query_dim, size_t k,
                   SearchScratch* scratch) const override;
  bool GetVector(uint64_t id, std::vector<float>* out) const override;
  size_t size() const override { return ids_.size(); }

  // Re-runs K-Means over the current contents with K = sqrt(N).
  void Rebuild();

  size_t num_clusters() const { return centroids_.size(); }
  bool clustered() const { return !centroids_.empty(); }

 private:
  const float* VecOf(size_t slot) const { return arena_.data() + slot * config_.dim; }
  void MaybeRebuild();
  size_t NearestCluster(const float* vec) const;
  std::vector<size_t> NearestClusters(const std::vector<float>& vec, size_t n) const;

  KMeansIndexConfig config_;
  Rng rng_;
  // Dense arena with swap-to-back removal (same discipline as FlatIndex).
  std::vector<uint64_t> ids_;
  std::vector<float> arena_;
  std::unordered_map<uint64_t, size_t> slot_of_;
  std::unordered_map<uint64_t, size_t> cluster_of_;
  std::vector<std::vector<float>> centroids_;
  std::vector<std::vector<uint64_t>> cluster_members_;
  size_t size_at_last_build_ = 0;
};

}  // namespace iccache

#endif  // SRC_INDEX_VECTOR_INDEX_H_
