// Vector similarity-search substrate (stand-in for the paper's GPU FAISS
// deployment, section 5). Two implementations share one interface:
//
//  * FlatIndex    — exact brute-force search; the correctness reference.
//  * KMeansIndex  — inverted-file index over K-Means clusters with the paper's
//                   K = sqrt(N) sizing (section 4.1); approximate but probes
//                   only nprobe clusters per query.
//
// Vectors are expected to be L2-normalized (the HashingEmbedder guarantees
// this), so the similarity score is the inner product == cosine similarity.
#ifndef SRC_INDEX_VECTOR_INDEX_H_
#define SRC_INDEX_VECTOR_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"

namespace iccache {

struct SearchResult {
  uint64_t id = 0;
  double score = 0.0;  // cosine similarity, higher is better
};

class VectorIndex {
 public:
  virtual ~VectorIndex() = default;

  // Inserts (or overwrites) the vector for id.
  virtual Status Add(uint64_t id, std::vector<float> vec) = 0;

  // Removes id; returns false when absent.
  virtual bool Remove(uint64_t id) = 0;

  // Returns up to k nearest neighbours sorted best-first.
  virtual std::vector<SearchResult> Search(const std::vector<float>& query, size_t k) const = 0;

  // Copies the stored vector for id into *out; false when absent. Used by
  // the persistence subsystem to export each example's embedding alongside
  // its lifecycle record.
  virtual bool GetVector(uint64_t id, std::vector<float>* out) const = 0;

  virtual size_t size() const = 0;
};

// Exact brute-force index. Vectors live in one contiguous slot-major arena
// (`dim` floats per slot, swap-to-back removal), so the scan is a single
// sequential sweep the shared SIMD dot kernel can stream through — the same
// layout discipline as the HNSW arena.
class FlatIndex : public VectorIndex {
 public:
  explicit FlatIndex(size_t dim);

  Status Add(uint64_t id, std::vector<float> vec) override;
  bool Remove(uint64_t id) override;
  std::vector<SearchResult> Search(const std::vector<float>& query, size_t k) const override;
  bool GetVector(uint64_t id, std::vector<float>* out) const override;
  size_t size() const override { return slot_of_.size(); }

  // Direct access for diagnostics: the contiguous dim()-length vector for id,
  // nullptr when absent. Invalidated by the next Add/Remove.
  const float* Find(uint64_t id) const;

  size_t dim() const { return dim_; }

 private:
  const float* VecOf(size_t slot) const { return arena_.data() + slot * dim_; }

  size_t dim_;
  // Dense storage with swap-to-back removal; ids_[s]'s vector occupies
  // arena_[s*dim, (s+1)*dim).
  std::vector<uint64_t> ids_;
  std::vector<float> arena_;
  std::unordered_map<uint64_t, size_t> slot_of_;
};

struct KMeansIndexConfig {
  size_t dim = 128;
  // Number of clusters probed per query. The paper probes the nearest
  // centroid; probing a couple more trades a little compute for recall.
  size_t nprobe = 3;
  // Rebuild clustering when the index grows by this factor since last build.
  double rebuild_growth_factor = 2.0;
  // Below this size, brute force beats clustering; stay flat.
  size_t min_points_to_cluster = 64;
  uint64_t seed = 0x5eed;
};

// Inverted-file index over K-Means clusters (K = sqrt(N) at build time).
// Vector storage is the same contiguous slot-major arena as FlatIndex (the
// old map-of-vectors layout defeated prefetching and SIMD loads); the
// cluster structures only hold ids.
class KMeansIndex : public VectorIndex {
 public:
  explicit KMeansIndex(KMeansIndexConfig config = {});

  Status Add(uint64_t id, std::vector<float> vec) override;
  bool Remove(uint64_t id) override;
  std::vector<SearchResult> Search(const std::vector<float>& query, size_t k) const override;
  bool GetVector(uint64_t id, std::vector<float>* out) const override;
  size_t size() const override { return ids_.size(); }

  // Re-runs K-Means over the current contents with K = sqrt(N).
  void Rebuild();

  size_t num_clusters() const { return centroids_.size(); }
  bool clustered() const { return !centroids_.empty(); }

 private:
  const float* VecOf(size_t slot) const { return arena_.data() + slot * config_.dim; }
  void MaybeRebuild();
  size_t NearestCluster(const float* vec) const;
  std::vector<size_t> NearestClusters(const std::vector<float>& vec, size_t n) const;

  KMeansIndexConfig config_;
  Rng rng_;
  // Dense arena with swap-to-back removal (same discipline as FlatIndex).
  std::vector<uint64_t> ids_;
  std::vector<float> arena_;
  std::unordered_map<uint64_t, size_t> slot_of_;
  std::unordered_map<uint64_t, size_t> cluster_of_;
  std::vector<std::vector<float>> centroids_;
  std::vector<std::vector<uint64_t>> cluster_members_;
  size_t size_at_last_build_ = 0;
};

}  // namespace iccache

#endif  // SRC_INDEX_VECTOR_INDEX_H_
