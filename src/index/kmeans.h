// Lloyd's K-Means with k-means++ initialization. Backs the KMeansIndex that
// implements the paper's offline clustering of cached examples (section 4.1:
// "cluster cached examples offline into K groups using K-Means", with
// K = sqrt(N) minimizing the per-request matching cost K + N/K).
#ifndef SRC_INDEX_KMEANS_H_
#define SRC_INDEX_KMEANS_H_

#include <cstddef>
#include <vector>

#include "src/common/rng.h"

namespace iccache {

struct KMeansResult {
  std::vector<std::vector<float>> centroids;
  std::vector<size_t> assignments;  // assignments[i] = centroid of points[i]
  double inertia = 0.0;             // sum of squared distances to assigned centroids
  size_t iterations = 0;
};

struct KMeansOptions {
  size_t max_iterations = 25;
  // Stop when relative inertia improvement falls below this threshold.
  double tolerance = 1e-4;
};

// Clusters points (all of equal dimension) into k groups. k is clamped to
// [1, points.size()]. Deterministic for a given rng state.
KMeansResult KMeansCluster(const std::vector<std::vector<float>>& points, size_t k, Rng& rng,
                           const KMeansOptions& options = {});

// The paper's optimal cluster count: argmin_K (K + N/K) = sqrt(N), at least 1.
size_t OptimalClusterCount(size_t n);

}  // namespace iccache

#endif  // SRC_INDEX_KMEANS_H_
