#include "src/workload/query_generator.h"

#include <algorithm>
#include <cmath>

#include "src/common/mathutil.h"

namespace iccache {

namespace {

// Common filler vocabulary shared across every topic and dataset.
constexpr const char* kFillers[] = {
    "what", "how",  "the",  "of",   "is",    "a",    "to",    "in",   "for",  "please",
    "can",  "you",  "tell", "me",   "about", "with", "explain", "best", "does", "why",
};
constexpr size_t kNumFillers = sizeof(kFillers) / sizeof(kFillers[0]);

constexpr const char* kTaskPrefix[] = {
    "chat",       // kConversation
    "question",   // kQuestionAnswering
    "translate",  // kTranslation
    "code",       // kCodeGeneration
    "solve",      // kMathReasoning
};

std::string Base36(uint64_t value) {
  static const char kDigits[] = "0123456789abcdefghijklmnopqrstuvwxyz";
  std::string out;
  do {
    out.push_back(kDigits[value % 36]);
    value /= 36;
  } while (value != 0);
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace

QueryGenerator::QueryGenerator(DatasetProfile profile, uint64_t seed)
    : profile_(profile),
      rng_(seed ^ Mix64(static_cast<uint64_t>(profile.id) + 0x5717u)),
      topic_sampler_(profile.num_topics, profile.topic_zipf_exponent) {}

std::string QueryGenerator::CoreToken(uint32_t topic_id, size_t slot) const {
  const uint64_t h = Mix64((static_cast<uint64_t>(profile_.id) << 48) ^
                           (static_cast<uint64_t>(topic_id) << 16) ^ slot);
  return "w" + Base36(h & 0xffffffffffull);
}

double QueryGenerator::IntentDifficulty(const DatasetProfile& profile, uint32_t topic_id,
                                        uint32_t intent_id) {
  // Stable per-intent draw from the dataset's Beta(alpha, beta) difficulty
  // distribution, keyed only by identity so all components agree.
  Rng intent_rng(Mix64((static_cast<uint64_t>(profile.id) << 40) ^
                       (static_cast<uint64_t>(topic_id) << 8) ^ intent_id));
  return Clamp(intent_rng.Beta(profile.difficulty_alpha, profile.difficulty_beta), 0.0, 1.0);
}

Request QueryGenerator::Next() {
  Request req;
  req.id = next_id_++;
  req.dataset = profile_.id;
  req.task = profile_.task;

  req.topic_id = static_cast<uint32_t>(topic_sampler_.Sample(rng_));
  req.intent_id = static_cast<uint32_t>(rng_.UniformInt(profile_.intents_per_topic));

  // Intent chooses a deterministic core-token subset; the paraphrase noise is
  // one swapped slot plus shuffled order and fresh fillers.
  Rng intent_rng(Mix64((static_cast<uint64_t>(req.topic_id) << 20) ^ req.intent_id ^
                       (static_cast<uint64_t>(profile_.id) << 52)));
  const size_t take = std::min(profile_.tokens_per_query, profile_.core_tokens_per_topic);
  std::vector<size_t> slots =
      intent_rng.SampleWithoutReplacement(profile_.core_tokens_per_topic, take);

  // Paraphrase: occasionally swap one chosen slot for a random topic slot.
  if (!slots.empty() && rng_.Bernoulli(0.35)) {
    slots[rng_.UniformInt(slots.size())] = rng_.UniformInt(profile_.core_tokens_per_topic);
  }

  std::vector<std::string> words;
  words.reserve(slots.size() + profile_.filler_tokens_per_query + 1);
  words.push_back(kTaskPrefix[static_cast<size_t>(profile_.task)]);
  for (size_t slot : slots) {
    words.push_back(CoreToken(req.topic_id, slot));
  }
  for (size_t i = 0; i < profile_.filler_tokens_per_query; ++i) {
    words.push_back(kFillers[rng_.UniformInt(kNumFillers)]);
  }
  // Shuffle everything after the task prefix.
  for (size_t i = words.size() - 1; i > 1; --i) {
    std::swap(words[i], words[1 + rng_.UniformInt(i)]);
  }

  req.text.clear();
  for (size_t i = 0; i < words.size(); ++i) {
    if (i > 0) {
      req.text.push_back(' ');
    }
    req.text += words[i];
  }

  const double base_difficulty = IntentDifficulty(profile_, req.topic_id, req.intent_id);
  req.difficulty = Clamp(base_difficulty + rng_.Normal(0.0, 0.03), 0.0, 1.0);

  req.input_tokens = static_cast<int>(Clamp(
      rng_.LogNormal(profile_.input_tokens_log_mean, profile_.input_tokens_log_std), 4.0, 4096.0));
  req.target_output_tokens = static_cast<int>(
      Clamp(rng_.LogNormal(profile_.output_tokens_log_mean, profile_.output_tokens_log_std), 8.0,
            4096.0));
  return req;
}

std::vector<Request> QueryGenerator::Generate(size_t n) {
  std::vector<Request> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(Next());
  }
  return out;
}

}  // namespace iccache
