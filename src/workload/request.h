// Request records flowing through the system. A request carries the visible
// payload (text, token counts) plus latent ground-truth attributes (topic,
// intent, difficulty) that only the workload generator and the generation
// simulator may inspect — serving-side components must treat them as opaque,
// exactly as a production system cannot observe a query's true difficulty.
#ifndef SRC_WORKLOAD_REQUEST_H_
#define SRC_WORKLOAD_REQUEST_H_

#include <cstdint>
#include <string>

namespace iccache {

enum class TaskType {
  kConversation,
  kQuestionAnswering,
  kTranslation,
  kCodeGeneration,
  kMathReasoning,
};

const char* TaskTypeName(TaskType task);

enum class DatasetId {
  kAlpaca,
  kLmsysChat,
  kOpenOrca,
  kMsMarco,
  kNaturalQuestions,
  kWmt16,
  kNl2Bash,
  kMath500,
};

const char* DatasetName(DatasetId dataset);

struct Request {
  uint64_t id = 0;
  DatasetId dataset = DatasetId::kLmsysChat;
  TaskType task = TaskType::kConversation;
  std::string text;

  // Privacy-domain tag (src/core/privacy.h): cached data derived from this
  // request may only be shared within the same user domain. 0 is the shared
  // global domain; multi-tenant deployments assign one id per tenant. Carried
  // into the cached Example and through snapshots (per-domain byte usage is
  // reported by tools/snapshot_dump).
  uint32_t privacy_domain = 0;

  // Latent ground truth (generator/simulator only).
  uint32_t topic_id = 0;
  uint32_t intent_id = 0;    // sub-topic; equal intent == semantically equivalent
  double difficulty = 0.5;   // in [0, 1]; larger needs a more capable model

  // Token accounting.
  int input_tokens = 0;
  int target_output_tokens = 0;

  // Arrival time in seconds of simulated time (0 when not load-driven).
  double arrival_time = 0.0;
};

}  // namespace iccache

#endif  // SRC_WORKLOAD_REQUEST_H_
