#include "src/workload/dataset.h"

namespace iccache {

const char* TaskTypeName(TaskType task) {
  switch (task) {
    case TaskType::kConversation:
      return "conversation";
    case TaskType::kQuestionAnswering:
      return "question_answering";
    case TaskType::kTranslation:
      return "translation";
    case TaskType::kCodeGeneration:
      return "code_generation";
    case TaskType::kMathReasoning:
      return "math_reasoning";
  }
  return "unknown";
}

const char* DatasetName(DatasetId dataset) {
  switch (dataset) {
    case DatasetId::kAlpaca:
      return "Alpaca";
    case DatasetId::kLmsysChat:
      return "LMSys-Chat";
    case DatasetId::kOpenOrca:
      return "OpenOrca";
    case DatasetId::kMsMarco:
      return "MS-MARCO";
    case DatasetId::kNaturalQuestions:
      return "NaturalQuestions";
    case DatasetId::kWmt16:
      return "WMT-16";
    case DatasetId::kNl2Bash:
      return "NL2Bash";
    case DatasetId::kMath500:
      return "Math500-Level5";
  }
  return "unknown";
}

DatasetProfile GetDatasetProfile(DatasetId id) {
  DatasetProfile p;
  p.id = id;
  switch (id) {
    case DatasetId::kAlpaca:
      // Instruction-following conversation; moderate topical diversity.
      p.task = TaskType::kConversation;
      p.num_topics = 1200;
      p.topic_zipf_exponent = 0.95;
      p.difficulty_alpha = 2.0;
      p.difficulty_beta = 3.2;
      p.input_tokens_log_mean = 3.6;
      p.output_tokens_log_mean = 5.0;
      p.example_pool_size = 32392;
      p.request_count = 1800;
      break;
    case DatasetId::kLmsysChat:
      // Free-form chat; very diverse, heavy head topics (Figure 3a's highest
      // similarity mass comes from repeated hot prompts).
      p.task = TaskType::kConversation;
      p.num_topics = 4000;
      p.topic_zipf_exponent = 1.10;
      p.difficulty_alpha = 2.2;
      p.difficulty_beta = 2.8;
      p.input_tokens_log_mean = 4.0;
      p.output_tokens_log_mean = 5.3;
      p.example_pool_size = 273043;
      p.request_count = 15170;
      break;
    case DatasetId::kOpenOrca:
      // GPT-augmented FLAN reasoning traces; harder on average.
      p.task = TaskType::kConversation;
      p.num_topics = 5000;
      p.topic_zipf_exponent = 1.00;
      p.difficulty_alpha = 2.6;
      p.difficulty_beta = 2.4;
      p.input_tokens_log_mean = 4.4;
      p.output_tokens_log_mean = 5.2;
      p.example_pool_size = 774285;
      p.request_count = 43016;
      break;
    case DatasetId::kMsMarco:
      // Bing search queries: short, redundant, comparatively easy.
      p.task = TaskType::kQuestionAnswering;
      p.num_topics = 2500;
      p.topic_zipf_exponent = 1.15;
      p.intents_per_topic = 3;
      p.tokens_per_query = 7;
      p.filler_tokens_per_query = 2;
      p.difficulty_alpha = 1.8;
      p.difficulty_beta = 3.8;
      p.input_tokens_log_mean = 2.9;
      p.input_tokens_log_std = 0.45;
      p.output_tokens_log_mean = 4.3;
      p.example_pool_size = 808731;
      p.request_count = 101092;
      break;
    case DatasetId::kNaturalQuestions:
      // Real Google questions; factual, mid difficulty.
      p.task = TaskType::kQuestionAnswering;
      p.num_topics = 1800;
      p.topic_zipf_exponent = 1.05;
      p.intents_per_topic = 3;
      p.tokens_per_query = 8;
      p.difficulty_alpha = 2.1;
      p.difficulty_beta = 3.0;
      p.input_tokens_log_mean = 3.0;
      p.input_tokens_log_std = 0.4;
      p.output_tokens_log_mean = 4.5;
      p.example_pool_size = 300000;
      p.request_count = 7830;
      break;
    case DatasetId::kWmt16:
      // Translation; templated, highly repetitive phrasing.
      p.task = TaskType::kTranslation;
      p.num_topics = 900;
      p.topic_zipf_exponent = 1.10;
      p.intents_per_topic = 5;
      p.difficulty_alpha = 2.0;
      p.difficulty_beta = 3.4;
      p.input_tokens_log_mean = 3.4;
      p.output_tokens_log_mean = 3.6;
      p.example_pool_size = 600000;
      p.request_count = 1000;
      break;
    case DatasetId::kNl2Bash:
      // Code generation: small domain, strong structure, hard for small models.
      p.task = TaskType::kCodeGeneration;
      p.num_topics = 350;
      p.topic_zipf_exponent = 0.90;
      p.intents_per_topic = 4;
      p.core_tokens_per_topic = 10;
      p.difficulty_alpha = 3.0;
      p.difficulty_beta = 2.2;
      p.input_tokens_log_mean = 3.2;
      p.output_tokens_log_mean = 3.4;
      p.output_tokens_log_std = 0.5;
      p.example_pool_size = 8090;
      p.request_count = 609;
      break;
    case DatasetId::kMath500:
      // Level-5 math reasoning: hardest tail, long outputs.
      p.task = TaskType::kMathReasoning;
      p.num_topics = 500;
      p.topic_zipf_exponent = 0.85;
      p.intents_per_topic = 4;
      p.difficulty_alpha = 3.6;
      p.difficulty_beta = 1.8;
      p.input_tokens_log_mean = 4.2;
      p.output_tokens_log_mean = 5.8;
      p.example_pool_size = 7500;
      p.request_count = 5000;
      break;
  }
  return p;
}

std::vector<DatasetProfile> AllDatasetProfiles() {
  return {
      GetDatasetProfile(DatasetId::kAlpaca),        GetDatasetProfile(DatasetId::kLmsysChat),
      GetDatasetProfile(DatasetId::kOpenOrca),      GetDatasetProfile(DatasetId::kMsMarco),
      GetDatasetProfile(DatasetId::kNaturalQuestions), GetDatasetProfile(DatasetId::kWmt16),
      GetDatasetProfile(DatasetId::kNl2Bash),       GetDatasetProfile(DatasetId::kMath500),
  };
}

std::vector<DatasetId> EndToEndDatasets() {
  return {DatasetId::kMsMarco, DatasetId::kNaturalQuestions, DatasetId::kLmsysChat,
          DatasetId::kOpenOrca};
}

}  // namespace iccache
