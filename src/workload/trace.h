// Arrival-trace generation (stand-in for the Azure/Microsoft LLM serving
// trace the paper replays, Figures 2 and 22). Supports constant-rate and
// Poisson arrivals plus a diurnal+bursty profile with minute-scale spikes up
// to the paper's observed 25x peak-to-trough ratio.
#ifndef SRC_WORKLOAD_TRACE_H_
#define SRC_WORKLOAD_TRACE_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"

namespace iccache {

enum class TraceKind {
  kConstant,       // evenly spaced arrivals
  kPoisson,        // memoryless arrivals at the mean rate
  kDiurnalBursty,  // sinusoidal daily cycle + random minute-level bursts
};

struct TraceConfig {
  TraceKind kind = TraceKind::kPoisson;
  double mean_rps = 2.0;
  double duration_s = 1800.0;  // 30 minutes by default (Figure 12/22)

  // Diurnal component (kDiurnalBursty): rate swings between
  // mean * (1 - diurnal_depth) and mean * (1 + diurnal_depth).
  double diurnal_period_s = 24.0 * 3600.0;
  double diurnal_depth = 0.6;

  // Burst component: bursts arrive as a Poisson process; during a burst the
  // instantaneous rate is multiplied by a factor drawn in
  // [2, burst_max_multiplier].
  double bursts_per_hour = 6.0;
  double burst_max_multiplier = 25.0;
  double burst_duration_mean_s = 45.0;

  uint64_t seed = 0x7ace;
};

class ArrivalTrace {
 public:
  explicit ArrivalTrace(TraceConfig config);

  // Instantaneous arrival rate at simulated time t (seconds).
  double RateAt(double t) const;

  // Generates arrival timestamps over [0, duration_s), sorted ascending.
  // Uses thinning against the (precomputed) rate envelope so bursts appear
  // at the correct intensity.
  std::vector<double> GenerateArrivals();

  const TraceConfig& config() const { return config_; }

 private:
  struct Burst {
    double start = 0.0;
    double end = 0.0;
    double multiplier = 1.0;
  };

  TraceConfig config_;
  std::vector<Burst> bursts_;
  double peak_rate_ = 0.0;
  mutable Rng rng_;
};

// Bins arrival timestamps into fixed windows and returns requests-per-second
// per bin — the series plotted in Figures 2 and 22.
std::vector<double> BinArrivalRate(const std::vector<double>& arrivals, double duration_s,
                                   double bin_s);

}  // namespace iccache

#endif  // SRC_WORKLOAD_TRACE_H_
