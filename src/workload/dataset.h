// Per-dataset workload profiles mirroring the paper's Table 1. Each profile
// parameterizes the synthetic query generator so the generated stream matches
// the statistics the experiments depend on: topic-popularity skew (similarity
// prevalence, Figure 3a; long-tail example access, Figure 10), per-task
// difficulty spread (offload headroom), and token-length distributions
// (latency modelling).
#ifndef SRC_WORKLOAD_DATASET_H_
#define SRC_WORKLOAD_DATASET_H_

#include <cstddef>
#include <vector>

#include "src/workload/request.h"

namespace iccache {

struct DatasetProfile {
  DatasetId id = DatasetId::kLmsysChat;
  TaskType task = TaskType::kConversation;

  // Topic structure.
  size_t num_topics = 2000;
  double topic_zipf_exponent = 1.05;  // larger -> more similarity mass on hot topics
  size_t intents_per_topic = 4;       // sub-variants; equal intent == same answer
  size_t core_tokens_per_topic = 12;  // topic vocabulary size
  size_t tokens_per_query = 9;        // core tokens sampled into each query
  size_t filler_tokens_per_query = 3;

  // Difficulty ~ Beta(a, b) (mean a/(a+b)); harder datasets shift mass right.
  double difficulty_alpha = 2.0;
  double difficulty_beta = 3.0;

  // Token lengths, lognormal.
  double input_tokens_log_mean = 3.9;   // exp(3.9) ~ 49 tokens
  double input_tokens_log_std = 0.6;
  double output_tokens_log_mean = 5.0;  // exp(5.0) ~ 148 tokens
  double output_tokens_log_std = 0.7;

  // Table 1 sizes (example pool / online request counts), scaled down
  // uniformly by the harnesses to fit the experiment budget.
  size_t example_pool_size = 100000;
  size_t request_count = 10000;
};

// Profile lookup for the eight Table 1 datasets.
DatasetProfile GetDatasetProfile(DatasetId id);

// All profiles in Table 1 order.
std::vector<DatasetProfile> AllDatasetProfiles();

// The four datasets used in the end-to-end online experiments (Figure 12).
std::vector<DatasetId> EndToEndDatasets();

}  // namespace iccache

#endif  // SRC_WORKLOAD_DATASET_H_
