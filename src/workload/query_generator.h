// Synthetic query stream generator.
//
// Queries are drawn from a topic mixture: a Zipf-distributed topic pick, an
// intent (sub-question) within the topic, and a bag of topic-core tokens plus
// common filler words. Two queries with the same intent are semantically
// equivalent (paraphrases); same topic but different intent are similar yet
// NOT interchangeable — the distinction that makes naive semantic caching
// lose quality (Figure 3b) while in-context reuse still helps (section 2.3).
//
// Latent difficulty is stable per intent (hash-derived), so repeated intents
// are consistently easy or hard — the property the proxy utility model and
// the bandit router learn to exploit.
#ifndef SRC_WORKLOAD_QUERY_GENERATOR_H_
#define SRC_WORKLOAD_QUERY_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/workload/dataset.h"
#include "src/workload/request.h"

namespace iccache {

class QueryGenerator {
 public:
  QueryGenerator(DatasetProfile profile, uint64_t seed);

  // Produces the next request (no arrival time assigned).
  Request Next();

  // Convenience batch generation.
  std::vector<Request> Generate(size_t n);

  const DatasetProfile& profile() const { return profile_; }

  // Deterministic latent difficulty of an intent in [0, 1]; exposed so the
  // generation simulator and tests agree on ground truth.
  static double IntentDifficulty(const DatasetProfile& profile, uint32_t topic_id,
                                 uint32_t intent_id);

 private:
  // Stable core-vocabulary token for a (topic, slot) pair.
  std::string CoreToken(uint32_t topic_id, size_t slot) const;

  DatasetProfile profile_;
  Rng rng_;
  ZipfSampler topic_sampler_;
  uint64_t next_id_ = 1;
};

}  // namespace iccache

#endif  // SRC_WORKLOAD_QUERY_GENERATOR_H_
