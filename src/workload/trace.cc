#include "src/workload/trace.h"

#include <algorithm>
#include <cmath>

namespace iccache {

ArrivalTrace::ArrivalTrace(TraceConfig config) : config_(config), rng_(config.seed) {
  if (config_.kind == TraceKind::kDiurnalBursty) {
    // Pre-draw burst windows for the whole horizon so RateAt() is a pure
    // function of time.
    Rng burst_rng = rng_.Fork();
    const double burst_rate_per_s = config_.bursts_per_hour / 3600.0;
    double t = 0.0;
    while (t < config_.duration_s) {
      t += burst_rng.Exponential(std::max(burst_rate_per_s, 1e-9));
      if (t >= config_.duration_s) {
        break;
      }
      Burst burst;
      burst.start = t;
      burst.end = t + burst_rng.Exponential(1.0 / std::max(config_.burst_duration_mean_s, 1e-9));
      burst.multiplier = burst_rng.Uniform(2.0, config_.burst_max_multiplier);
      bursts_.push_back(burst);
      t = burst.end;
    }
  }
  // Conservative rate envelope for thinning.
  peak_rate_ = config_.mean_rps * (1.0 + config_.diurnal_depth) * config_.burst_max_multiplier;
  if (config_.kind != TraceKind::kDiurnalBursty) {
    peak_rate_ = config_.mean_rps;
  }
}

double ArrivalTrace::RateAt(double t) const {
  switch (config_.kind) {
    case TraceKind::kConstant:
    case TraceKind::kPoisson:
      return config_.mean_rps;
    case TraceKind::kDiurnalBursty:
      break;
  }
  const double phase = 2.0 * M_PI * t / config_.diurnal_period_s;
  double rate = config_.mean_rps * (1.0 + config_.diurnal_depth * std::sin(phase));
  for (const Burst& burst : bursts_) {
    if (t >= burst.start && t < burst.end) {
      rate *= burst.multiplier;
      break;
    }
  }
  return std::max(rate, config_.mean_rps * 0.02);
}

std::vector<double> ArrivalTrace::GenerateArrivals() {
  std::vector<double> arrivals;
  switch (config_.kind) {
    case TraceKind::kConstant: {
      const double step = 1.0 / std::max(config_.mean_rps, 1e-9);
      for (double t = step; t < config_.duration_s; t += step) {
        arrivals.push_back(t);
      }
      return arrivals;
    }
    case TraceKind::kPoisson: {
      double t = 0.0;
      while (true) {
        t += rng_.Exponential(std::max(config_.mean_rps, 1e-9));
        if (t >= config_.duration_s) {
          return arrivals;
        }
        arrivals.push_back(t);
      }
    }
    case TraceKind::kDiurnalBursty:
      break;
  }
  // Thinning (Lewis-Shedler): simulate at the envelope rate, accept with
  // probability rate(t) / peak.
  double t = 0.0;
  while (true) {
    t += rng_.Exponential(std::max(peak_rate_, 1e-9));
    if (t >= config_.duration_s) {
      break;
    }
    if (rng_.Uniform() * peak_rate_ <= RateAt(t)) {
      arrivals.push_back(t);
    }
  }
  return arrivals;
}

std::vector<double> BinArrivalRate(const std::vector<double>& arrivals, double duration_s,
                                   double bin_s) {
  const size_t num_bins =
      static_cast<size_t>(std::max(1.0, std::ceil(duration_s / std::max(bin_s, 1e-9))));
  std::vector<double> rps(num_bins, 0.0);
  for (double t : arrivals) {
    if (t < 0.0 || t >= duration_s) {
      continue;
    }
    const size_t bin = std::min(num_bins - 1, static_cast<size_t>(t / bin_s));
    rps[bin] += 1.0;
  }
  for (auto& r : rps) {
    r /= bin_s;
  }
  return rps;
}

}  // namespace iccache
