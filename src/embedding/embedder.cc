#include "src/embedding/embedder.h"

#include <cctype>
#include <cmath>

#include "src/common/mathutil.h"
#include "src/common/rng.h"

namespace iccache {

std::vector<std::string> TokenizeWords(const std::string& text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char raw : text) {
    const unsigned char c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      current.push_back(static_cast<char>(std::tolower(c)));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) {
    tokens.push_back(std::move(current));
  }
  return tokens;
}

uint64_t HashToken(const std::string& token, uint64_t seed) {
  uint64_t hash = 0xcbf29ce484222325ull ^ seed;
  for (char c : token) {
    hash ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    hash *= 0x100000001b3ull;
  }
  return Mix64(hash);
}

HashingEmbedder::HashingEmbedder(HashingEmbedderConfig config) : config_(config) {
  // Deterministic common direction drawn from the seed.
  Rng rng(config_.seed ^ 0xdecafbadull);
  common_direction_.resize(config_.dim);
  for (auto& x : common_direction_) {
    x = static_cast<float>(rng.Normal());
  }
  NormalizeL2(common_direction_);
}

void HashingEmbedder::AddFeature(uint64_t feature_hash, double weight,
                                 std::vector<float>& acc) const {
  const size_t slot = feature_hash % config_.dim;
  const double sign = (feature_hash >> 63) ? -1.0 : 1.0;
  acc[slot] += static_cast<float>(sign * weight);
}

std::vector<float> HashingEmbedder::Embed(const std::string& text) const {
  std::vector<float> content(config_.dim, 0.0f);
  const std::vector<std::string> words = TokenizeWords(text);

  for (const auto& word : words) {
    AddFeature(HashToken(word, config_.seed), 1.0, content);
  }
  if (config_.use_word_bigrams) {
    for (size_t i = 0; i + 1 < words.size(); ++i) {
      AddFeature(HashToken(words[i] + "_" + words[i + 1], config_.seed ^ 0xb16b00b5ull), 0.3,
                 content);
    }
  }
  if (config_.use_char_trigrams) {
    for (const auto& word : words) {
      if (word.size() < 3) {
        continue;
      }
      for (size_t i = 0; i + 3 <= word.size(); ++i) {
        AddFeature(HashToken(word.substr(i, 3), config_.seed ^ 0x751f0011ull), 0.25, content);
      }
    }
  }

  NormalizeL2(content);

  std::vector<float> out(config_.dim, 0.0f);
  const double gamma = config_.anisotropy;
  for (size_t i = 0; i < config_.dim; ++i) {
    out[i] = content[i] + static_cast<float>(gamma) * common_direction_[i];
  }
  NormalizeL2(out);
  if (L2Norm(out) == 0.0) {
    // Empty text: return the pure common direction so similarity is defined.
    out = common_direction_;
  }
  return out;
}

}  // namespace iccache
