#include "src/embedding/embedder.h"

#include <cctype>
#include <cmath>
#include <cstring>

#include "src/common/mathutil.h"
#include "src/common/rng.h"

namespace iccache {

namespace {

constexpr uint64_t kFnvBasis = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

inline uint64_t FnvByte(uint64_t hash, unsigned char byte) {
  hash ^= static_cast<uint64_t>(byte);
  hash *= kFnvPrime;
  return hash;
}

// Folds the lowercased bytes of `span` into an in-progress FNV-1a state —
// the same byte sequence HashToken sees for a pre-lowercased token.
inline uint64_t FnvLowerSpan(uint64_t hash, std::string_view span) {
  for (char raw : span) {
    hash = FnvByte(hash, static_cast<unsigned char>(
                             std::tolower(static_cast<unsigned char>(raw))));
  }
  return hash;
}

}  // namespace

void TokenizeWordSpans(std::string_view text, std::vector<std::string_view>* spans) {
  spans->clear();  // reused caller scratch: capacity survives, contents don't
  size_t start = 0;
  bool in_word = false;
  for (size_t i = 0; i < text.size(); ++i) {
    const bool alnum = std::isalnum(static_cast<unsigned char>(text[i])) != 0;
    if (alnum && !in_word) {
      start = i;
      in_word = true;
    } else if (!alnum && in_word) {
      spans->push_back(text.substr(start, i - start));
      in_word = false;
    }
  }
  if (in_word) {
    spans->push_back(text.substr(start));
  }
}

std::vector<std::string> TokenizeWords(const std::string& text) {
  std::vector<std::string_view> spans;
  TokenizeWordSpans(text, &spans);
  std::vector<std::string> tokens;
  tokens.reserve(spans.size());
  for (std::string_view span : spans) {
    std::string token(span);
    for (char& c : token) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    tokens.push_back(std::move(token));
  }
  return tokens;
}

uint64_t HashToken(const std::string& token, uint64_t seed) {
  uint64_t hash = kFnvBasis ^ seed;
  for (char c : token) {
    hash = FnvByte(hash, static_cast<unsigned char>(c));
  }
  return Mix64(hash);
}

uint64_t HashTokenSpan(std::string_view token, uint64_t seed) {
  return Mix64(FnvLowerSpan(kFnvBasis ^ seed, token));
}

uint64_t HashBigramSpan(std::string_view a, std::string_view b, uint64_t seed) {
  uint64_t hash = FnvLowerSpan(kFnvBasis ^ seed, a);
  hash = FnvByte(hash, static_cast<unsigned char>('_'));
  hash = FnvLowerSpan(hash, b);
  return Mix64(hash);
}

void Embedder::EmbedInto(const std::string& text, float* out) const {
  const std::vector<float> vec = Embed(text);
  std::memcpy(out, vec.data(), vec.size() * sizeof(float));
}

HashingEmbedder::HashingEmbedder(HashingEmbedderConfig config) : config_(config) {
  // Deterministic common direction drawn from the seed.
  Rng rng(config_.seed ^ 0xdecafbadull);
  common_direction_.resize(config_.dim);
  for (auto& x : common_direction_) {
    x = static_cast<float>(rng.Normal());
  }
  NormalizeL2(common_direction_);
}

void HashingEmbedder::AddFeature(uint64_t feature_hash, double weight, float* acc) const {
  const size_t slot = feature_hash % config_.dim;
  const double sign = (feature_hash >> 63) ? -1.0 : 1.0;
  acc[slot] += static_cast<float>(sign * weight);
}

std::vector<float> HashingEmbedder::Embed(const std::string& text) const {
  std::vector<float> out(config_.dim, 0.0f);
  EmbedInto(text, out.data());
  return out;
}

void HashingEmbedder::EmbedInto(const std::string& text, float* out) const {
  // Reused across calls on a thread: the span list and the content
  // accumulator retain capacity, so steady-state embedding allocates nothing.
  static thread_local std::vector<std::string_view> spans;
  static thread_local std::vector<float> content;
  spans.clear();
  TokenizeWordSpans(text, &spans);
  content.assign(config_.dim, 0.0f);

  for (std::string_view word : spans) {
    AddFeature(HashTokenSpan(word, config_.seed), 1.0, content.data());
  }
  if (config_.use_word_bigrams) {
    for (size_t i = 0; i + 1 < spans.size(); ++i) {
      AddFeature(HashBigramSpan(spans[i], spans[i + 1], config_.seed ^ 0xb16b00b5ull), 0.3,
                 content.data());
    }
  }
  if (config_.use_char_trigrams) {
    for (std::string_view word : spans) {
      if (word.size() < 3) {
        continue;
      }
      for (size_t i = 0; i + 3 <= word.size(); ++i) {
        AddFeature(HashTokenSpan(word.substr(i, 3), config_.seed ^ 0x751f0011ull), 0.25,
                   content.data());
      }
    }
  }

  NormalizeL2(content.data(), config_.dim);

  const double gamma = config_.anisotropy;
  for (size_t i = 0; i < config_.dim; ++i) {
    out[i] = content[i] + static_cast<float>(gamma) * common_direction_[i];
  }
  NormalizeL2(out, config_.dim);
  if (L2Norm(out, config_.dim) == 0.0) {
    // Empty text: return the pure common direction so similarity is defined.
    std::memcpy(out, common_direction_.data(), config_.dim * sizeof(float));
  }
}

EmbedMemo::EmbedMemo(size_t slots) {
  if (slots == 0) {
    return;
  }
  size_t rounded = 1;
  while (rounded < slots) {
    rounded <<= 1;
  }
  slots_.resize(rounded);
  mask_ = rounded - 1;
}

bool EmbedMemo::EmbedInto(const Embedder& embedder, const std::string& text, float* out) {
  if (slots_.empty()) {
    embedder.EmbedInto(text, out);
    return false;
  }
  const uint64_t hash = HashToken(text, 0x3e3d0u);
  Slot& slot = slots_[hash & mask_];
  if (slot.valid && slot.hash == hash && slot.text == text &&
      slot.vec.size() == embedder.dim()) {
    std::memcpy(out, slot.vec.data(), slot.vec.size() * sizeof(float));
    ++hits_;
    return true;
  }
  embedder.EmbedInto(text, out);
  slot.valid = true;
  slot.hash = hash;
  slot.text = text;
  slot.vec.assign(out, out + embedder.dim());
  ++misses_;
  return false;
}

}  // namespace iccache
