// Text embedding substrate.
//
// The paper extracts dense T5 embeddings for every request and measures cosine
// similarity (section 2.3, Figure 3a). Offline we substitute a deterministic
// hashed-feature embedder: word unigrams/bigrams and character trigrams are
// hashed onto a signed d-dimensional vector which is then L2-normalized.
//
// Real sentence embeddings are anisotropic: two unrelated sentences still show
// ~0.5 cosine similarity because all embeddings share a dominant common
// direction (the paper's "0.5 similarity of random request pairs"). We model
// that explicitly with a fixed common component mixed into every embedding, so
// downstream similarity statistics have the same geometry the paper measured.
#ifndef SRC_EMBEDDING_EMBEDDER_H_
#define SRC_EMBEDDING_EMBEDDER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace iccache {

class Embedder {
 public:
  virtual ~Embedder() = default;

  // Maps text to a unit-norm embedding of dimension dim().
  virtual std::vector<float> Embed(const std::string& text) const = 0;

  virtual size_t dim() const = 0;
};

struct HashingEmbedderConfig {
  size_t dim = 128;
  // Weight of the shared anisotropy direction relative to the (unit-norm)
  // content features. gamma = 1.0 puts unrelated pairs near cosine 0.5.
  double anisotropy = 1.0;
  uint64_t seed = 0x1c0ffee;
  bool use_word_bigrams = true;
  bool use_char_trigrams = true;
};

class HashingEmbedder : public Embedder {
 public:
  explicit HashingEmbedder(HashingEmbedderConfig config = {});

  std::vector<float> Embed(const std::string& text) const override;

  size_t dim() const override { return config_.dim; }

  const HashingEmbedderConfig& config() const { return config_; }

 private:
  // Adds a hashed feature with the given weight into the accumulator.
  void AddFeature(uint64_t feature_hash, double weight, std::vector<float>& acc) const;

  HashingEmbedderConfig config_;
  std::vector<float> common_direction_;  // unit-norm anisotropy component
};

// Lowercases and splits on non-alphanumeric characters.
std::vector<std::string> TokenizeWords(const std::string& text);

// FNV-1a 64-bit hash of a byte string, mixed with the given seed.
uint64_t HashToken(const std::string& token, uint64_t seed);

}  // namespace iccache

#endif  // SRC_EMBEDDING_EMBEDDER_H_
