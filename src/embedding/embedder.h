// Text embedding substrate.
//
// The paper extracts dense T5 embeddings for every request and measures cosine
// similarity (section 2.3, Figure 3a). Offline we substitute a deterministic
// hashed-feature embedder: word unigrams/bigrams and character trigrams are
// hashed onto a signed d-dimensional vector which is then L2-normalized.
//
// Real sentence embeddings are anisotropic: two unrelated sentences still show
// ~0.5 cosine similarity because all embeddings share a dominant common
// direction (the paper's "0.5 similarity of random request pairs"). We model
// that explicitly with a fixed common component mixed into every embedding, so
// downstream similarity statistics have the same geometry the paper measured.
//
// Two hot-path facilities keep embedding off the allocator in the serving
// driver's prepare loop:
//
//  * EmbedInto writes into a caller-provided arena slot, tokenizing with
//    zero-copy word spans and incremental feature hashing — no per-token or
//    per-call heap allocations, bit-identical output to Embed (which is now a
//    thin wrapper around it).
//  * EmbedMemo is a bounded, deterministic, direct-mapped memo keyed by the
//    text's hash: a hit replays the stored embedder output byte-for-byte
//    (exact text comparison guards against hash collisions), so memoization
//    can never change a decision downstream.
#ifndef SRC_EMBEDDING_EMBEDDER_H_
#define SRC_EMBEDDING_EMBEDDER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace iccache {

class Embedder {
 public:
  virtual ~Embedder() = default;

  // Maps text to a unit-norm embedding of dimension dim().
  virtual std::vector<float> Embed(const std::string& text) const = 0;

  // Writes the embedding of `text` into out[0, dim()) — bit-identical to
  // Embed, but into a caller-provided arena slot so batch loops reuse one
  // allocation. The base implementation copies Embed's result; concrete
  // embedders override with an allocation-free path.
  virtual void EmbedInto(const std::string& text, float* out) const;

  virtual size_t dim() const = 0;
};

struct HashingEmbedderConfig {
  size_t dim = 128;
  // Weight of the shared anisotropy direction relative to the (unit-norm)
  // content features. gamma = 1.0 puts unrelated pairs near cosine 0.5.
  double anisotropy = 1.0;
  uint64_t seed = 0x1c0ffee;
  bool use_word_bigrams = true;
  bool use_char_trigrams = true;
};

class HashingEmbedder : public Embedder {
 public:
  explicit HashingEmbedder(HashingEmbedderConfig config = {});

  std::vector<float> Embed(const std::string& text) const override;

  // Allocation-free in steady state: tokenizes into a reusable thread-local
  // span scratch and hashes features incrementally (unigrams, bigrams,
  // trigrams) straight off the input bytes — no token strings, no
  // concatenation, no temporary vectors. Output is bit-identical to the
  // historical string-based pipeline (same byte sequences reach the same FNV
  // hash states).
  void EmbedInto(const std::string& text, float* out) const override;

  size_t dim() const override { return config_.dim; }

  const HashingEmbedderConfig& config() const { return config_; }

 private:
  // Adds a hashed feature with the given weight into the accumulator.
  void AddFeature(uint64_t feature_hash, double weight, float* acc) const;

  HashingEmbedderConfig config_;
  std::vector<float> common_direction_;  // unit-norm anisotropy component
};

// Appends each word of `text` (maximal alphanumeric run) to *spans as a view
// into `text` — zero allocations beyond the span vector's capacity. Words are
// NOT lowercased (a view cannot be); the span-hashing helpers below fold
// tolower in as they hash, reproducing the lowercased-token hashes exactly.
void TokenizeWordSpans(std::string_view text, std::vector<std::string_view>* spans);

// Lowercases and splits on non-alphanumeric characters. Thin wrapper over
// TokenizeWordSpans kept for callers that want owned tokens.
std::vector<std::string> TokenizeWords(const std::string& text);

// FNV-1a 64-bit hash of a byte string, mixed with the given seed.
uint64_t HashToken(const std::string& token, uint64_t seed);

// HashToken of the lowercased span, without materializing the lowercase
// string: HashTokenSpan(w, s) == HashToken(lower(w), s).
uint64_t HashTokenSpan(std::string_view token, uint64_t seed);

// HashToken of lower(a) + "_" + lower(b), hashed incrementally over the three
// parts (FNV-1a is sequential, so this equals hashing the concatenation).
uint64_t HashBigramSpan(std::string_view a, std::string_view b, uint64_t seed);

// Bounded deterministic embedding memo: direct-mapped by text hash, one entry
// per slot, newest-wins replacement. A hit copies the STORED embedder output
// (exact text equality required, so collisions can never serve a wrong
// vector), making memoized and unmemoized runs byte-identical. Not
// thread-safe: intended as a per-worker (thread_local) cache.
class EmbedMemo {
 public:
  // `slots` is rounded up to a power of two; 0 disables memoization
  // (every call goes straight to the embedder).
  explicit EmbedMemo(size_t slots);

  // Embeds `text` into out[0, embedder.dim()), serving exact repeats from the
  // memo. Returns true on a memo hit.
  bool EmbedInto(const Embedder& embedder, const std::string& text, float* out);

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  struct Slot {
    bool valid = false;
    uint64_t hash = 0;
    std::string text;
    std::vector<float> vec;
  };

  std::vector<Slot> slots_;
  uint64_t mask_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace iccache

#endif  // SRC_EMBEDDING_EMBEDDER_H_
