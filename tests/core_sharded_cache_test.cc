#include "src/core/sharded_cache.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/thread_pool.h"

namespace iccache {
namespace {

Request MakeRequest(uint64_t id, const std::string& text) {
  Request request;
  request.id = id;
  request.text = text;
  request.input_tokens = static_cast<int>(text.size() / 4 + 1);
  return request;
}

std::unique_ptr<ShardedExampleCache> MakeCache(size_t num_shards = 4) {
  ShardedCacheConfig config;
  config.num_shards = num_shards;
  return std::make_unique<ShardedExampleCache>(std::make_shared<HashingEmbedder>(), config);
}

TEST(ShardedExampleCacheTest, ShardCountRoundsUpToPowerOfTwo) {
  EXPECT_EQ(MakeCache(1)->num_shards(), 1u);
  EXPECT_EQ(MakeCache(3)->num_shards(), 4u);
  EXPECT_EQ(MakeCache(8)->num_shards(), 8u);
  EXPECT_EQ(MakeCache(9)->num_shards(), 16u);
}

TEST(ShardedExampleCacheTest, PutAssignsGloballyUniqueIds) {
  auto cache = MakeCache();
  std::set<uint64_t> ids;
  for (uint64_t i = 1; i <= 200; ++i) {
    const uint64_t id = cache->Put(MakeRequest(i, "query number " + std::to_string(i)),
                                   "response", 0.8, 0.9, 20, 0.0);
    ASSERT_NE(id, 0u);
    EXPECT_TRUE(ids.insert(id).second) << "duplicate id " << id;
  }
  EXPECT_EQ(cache->size(), 200u);
  EXPECT_EQ(cache->AllIds().size(), 200u);
  EXPECT_GT(cache->used_bytes(), 0);
}

TEST(ShardedExampleCacheTest, SnapshotRoundTripsThroughGlobalId) {
  auto cache = MakeCache();
  const Request request = MakeRequest(42, "how do i reverse a linked list");
  const uint64_t id = cache->Put(request, "walk and flip the pointers", 0.77, 0.9, 30, 1.5);
  ASSERT_NE(id, 0u);

  Example example;
  ASSERT_TRUE(cache->Snapshot(id, &example));
  EXPECT_EQ(example.id, id);  // snapshot exposes the global id
  EXPECT_EQ(example.request.text, request.text);
  EXPECT_EQ(example.response_text, "walk and flip the pointers");
  EXPECT_DOUBLE_EQ(example.response_quality, 0.77);
  EXPECT_EQ(example.response_tokens, 30);
  EXPECT_TRUE(cache->Contains(id));
  EXPECT_FALSE(cache->Contains(id + 1024));
}

TEST(ShardedExampleCacheTest, FindSimilarRetrievesTheMatchingEntry) {
  auto cache = MakeCache();
  std::vector<uint64_t> ids;
  const std::vector<std::string> texts = {
      "sort an array of integers quickly",
      "translate good morning into french",
      "derivative of x squared times sin x",
      "write a bash loop over files in a directory",
  };
  for (size_t i = 0; i < texts.size(); ++i) {
    ids.push_back(cache->Put(MakeRequest(i + 1, texts[i]), "r", 0.8, 0.9, 10, 0.0));
  }
  for (size_t i = 0; i < texts.size(); ++i) {
    const auto results = cache->FindSimilar(MakeRequest(99, texts[i]), 2);
    ASSERT_FALSE(results.empty());
    EXPECT_EQ(results[0].id, ids[i]) << "query: " << texts[i];
    EXPECT_GT(results[0].score, 0.95);
  }
}

TEST(ShardedExampleCacheTest, FindSimilarMergesBestFirstAcrossShards) {
  auto cache = MakeCache(4);
  for (uint64_t i = 1; i <= 64; ++i) {
    cache->Put(MakeRequest(i, "topic " + std::to_string(i % 8) + " variant " +
                                  std::to_string(i)),
               "r", 0.8, 0.9, 10, 0.0);
  }
  const auto results = cache->FindSimilar(MakeRequest(999, "topic 3 variant 11"), 10);
  ASSERT_EQ(results.size(), 10u);
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_GE(results[i - 1].score, results[i].score) << "results must be sorted best-first";
  }
}

TEST(ShardedExampleCacheTest, RemoveDeletesAcrossShards) {
  auto cache = MakeCache();
  std::vector<uint64_t> ids;
  for (uint64_t i = 1; i <= 20; ++i) {
    ids.push_back(cache->Put(MakeRequest(i, "q" + std::to_string(i)), "r", 0.8, 0.9, 10, 0.0));
  }
  for (uint64_t id : ids) {
    EXPECT_TRUE(cache->Remove(id));
    EXPECT_FALSE(cache->Contains(id));
  }
  EXPECT_EQ(cache->size(), 0u);
  EXPECT_FALSE(cache->Remove(ids[0]));  // already gone
}

TEST(ShardedExampleCacheTest, OffloadAndAccessBookkeepingLandOnTheRightShard) {
  auto cache = MakeCache();
  const uint64_t id = cache->Put(MakeRequest(7, "bookkeeping probe"), "r", 0.6, 0.9, 10, 0.0);
  cache->RecordAccess(id, 3.0);
  cache->RecordOffload(id, 2.0);
  Example example;
  ASSERT_TRUE(cache->Snapshot(id, &example));
  EXPECT_EQ(example.access_count, 1u);
  EXPECT_DOUBLE_EQ(example.last_access_time, 3.0);
  EXPECT_DOUBLE_EQ(example.offload_value, 2.0);

  cache->DecayTick();
  ASSERT_TRUE(cache->Snapshot(id, &example));
  EXPECT_LT(example.offload_value, 2.0);
}

TEST(ShardedExampleCacheTest, PutPreparedMatchesOneShotPut) {
  auto cache = MakeCache();
  const Request request = MakeRequest(11, "prepared admission path probe");
  const PreparedAdmission prepared = cache->PrepareAdmission(request);
  ASSERT_TRUE(prepared.admit);
  EXPECT_EQ(prepared.sanitized_text, request.text);  // no PII to scrub
  EXPECT_EQ(prepared.embedding.size(), cache->embedder()->dim());

  const uint64_t id = cache->PutPrepared(request, prepared, "r", 0.8, 0.9, 10, 0.0);
  ASSERT_NE(id, 0u);
  const auto results = cache->FindSimilar(request, 1);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].id, id);
}

TEST(ShardedExampleCacheTest, CapacityIsEnforcedGlobally) {
  ShardedCacheConfig config;
  config.num_shards = 2;
  config.cache.capacity_bytes = 4096;  // total; global watermark accounting
  ShardedExampleCache cache(std::make_shared<HashingEmbedder>(), config);
  for (uint64_t i = 1; i <= 200; ++i) {
    cache.Put(MakeRequest(i, "filler entry number " + std::to_string(i)), "some response text",
              0.8, 0.9, 50, 0.0);
  }
  EXPECT_LT(cache.size(), 200u);  // eviction must have triggered
  EXPECT_LE(cache.used_bytes(), 4096);
}

// FindSimilarBatch must return byte-for-byte what per-query FindSimilar
// returns — same ids, same scores, same order — at batch sizes that are
// smaller than, equal to, and larger than the traversal's interleave width,
// and on both the flat and hnsw shard backends. Batching is a locking and
// cache-locality optimisation only.
TEST(ShardedExampleCacheTest, FindSimilarBatchMatchesPerQuerySearch) {
  for (const RetrievalBackendKind kind :
       {RetrievalBackendKind::kFlat, RetrievalBackendKind::kHnsw}) {
    ShardedCacheConfig config;
    config.num_shards = 4;
    config.cache.retrieval.kind = kind;
    ShardedExampleCache cache(std::make_shared<HashingEmbedder>(), config);
    for (uint64_t i = 1; i <= 300; ++i) {
      cache.Put(MakeRequest(i, "pooled example text " + std::to_string(i * 37)),
                "response", 0.8, 0.9, 25, 0.0);
    }

    const size_t dim = cache.embedder()->dim();
    std::vector<std::vector<float>> embeddings;
    for (int q = 0; q < 33; ++q) {
      embeddings.push_back(
          cache.embedder()->Embed("probe query " + std::to_string(q * 11)));
    }

    SearchScratch scratch;
    for (const size_t batch : {size_t{1}, size_t{7}, size_t{33}}) {
      std::vector<float> arena(batch * dim);
      for (size_t i = 0; i < batch; ++i) {
        std::copy(embeddings[i].begin(), embeddings[i].end(), arena.begin() + i * dim);
      }
      std::vector<std::vector<SearchResult>> batched;
      cache.FindSimilarBatch(arena.data(), batch, dim, 10, &scratch, &batched);
      ASSERT_EQ(batched.size(), batch);
      for (size_t i = 0; i < batch; ++i) {
        const std::vector<SearchResult> single = cache.FindSimilar(embeddings[i], 10);
        ASSERT_EQ(batched[i].size(), single.size()) << "kind=" << static_cast<int>(kind)
                                                    << " batch=" << batch << " q=" << i;
        for (size_t r = 0; r < single.size(); ++r) {
          EXPECT_EQ(batched[i][r].id, single[r].id);
          EXPECT_EQ(batched[i][r].score, single[r].score);
        }
      }
    }
  }
}

// Writers and readers hammer the cache from a thread pool at once; the test
// asserts the end state is exact (every admission landed, ids unique) and no
// reader ever observes a torn entry.
TEST(ShardedExampleCacheTest, ConcurrentPutsAndSearchesAreSafe) {
  auto cache = MakeCache(8);
  constexpr int kWriters = 4;
  constexpr int kPutsPerWriter = 100;
  constexpr int kReaders = 4;

  ThreadPool pool(8);
  std::atomic<int> torn_reads{0};
  for (int w = 0; w < kWriters; ++w) {
    pool.Submit([&cache, w] {
      for (int i = 0; i < kPutsPerWriter; ++i) {
        const uint64_t rid = static_cast<uint64_t>(w) * 10000 + static_cast<uint64_t>(i) + 1;
        cache->Put(MakeRequest(rid, "writer " + std::to_string(w) + " item " +
                                        std::to_string(i)),
                   "response body", 0.8, 0.9, 25, 0.0);
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    pool.Submit([&cache, &torn_reads, r] {
      for (int i = 0; i < 200; ++i) {
        const auto results =
            cache->FindSimilar(MakeRequest(0, "writer 1 item " + std::to_string(i % 50)), 4);
        for (const SearchResult& result : results) {
          Example example;
          if (cache->Snapshot(result.id, &example)) {
            if (example.request.text.empty() || example.response_text.empty()) {
              torn_reads.fetch_add(1);
            }
          }
        }
        (void)r;
      }
    });
  }
  pool.Wait();

  EXPECT_EQ(torn_reads.load(), 0);
  EXPECT_EQ(cache->size(), static_cast<size_t>(kWriters * kPutsPerWriter));
  const std::vector<uint64_t> ids = cache->AllIds();
  EXPECT_EQ(std::set<uint64_t>(ids.begin(), ids.end()).size(),
            static_cast<size_t>(kWriters * kPutsPerWriter));
}

}  // namespace
}  // namespace iccache
