#include "src/common/thread_pool.h"

#include <atomic>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

namespace iccache {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();
  SUCCEED();
}

TEST(ThreadPoolTest, ParallelPartialSumsAggregate) {
  ThreadPool pool(2);
  std::vector<long> partials(8, 0);
  for (int w = 0; w < 8; ++w) {
    pool.Submit([&partials, w] {
      long sum = 0;
      for (int i = 0; i < 1000; ++i) {
        sum += w * 1000 + i;
      }
      partials[w] = sum;
    });
  }
  pool.Wait();
  long total = 0;
  for (long p : partials) {
    total += p;
  }
  long expected = 0;
  for (int i = 0; i < 8000; ++i) {
    expected += i;
  }
  EXPECT_EQ(total, expected);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; });
  pool.Wait();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, ReusableAcrossWaves) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int wave = 0; wave < 5; ++wave) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), (wave + 1) * 20);
  }
}

TEST(ThreadPoolTest, StressOneThousandTasks) {
  ThreadPool pool(8);
  std::atomic<long> sum{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&sum, i] {
      long local = 0;
      for (int j = 0; j <= i % 50; ++j) {
        local += j;  // small variable-length unit of work
      }
      sum.fetch_add(local + 1);
    });
  }
  pool.Wait();
  long expected = 0;
  for (int i = 0; i < 1000; ++i) {
    long local = 0;
    for (int j = 0; j <= i % 50; ++j) {
      local += j;
    }
    expected += local + 1;
  }
  EXPECT_EQ(sum.load(), expected);
}

TEST(ThreadPoolTest, SubmitFromRunningTaskIsCoveredByWait) {
  // Tasks may enqueue follow-up work; Wait must not return until the whole
  // transitive closure has executed.
  ThreadPool pool(4);
  std::atomic<int> parents{0};
  std::atomic<int> children{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&pool, &parents, &children] {
      parents.fetch_add(1);
      for (int c = 0; c < 5; ++c) {
        pool.Submit([&children] { children.fetch_add(1); });
      }
    });
  }
  pool.Wait();
  EXPECT_EQ(parents.load(), 100);
  EXPECT_EQ(children.load(), 500);
}

TEST(ThreadPoolTest, NestedSubmissionChainsResolve) {
  ThreadPool pool(3);
  std::atomic<int> depth_sum{0};
  // Each chain re-submits itself 4 times: 10 chains x 5 links = 50 executions.
  std::function<void(int)> link = [&pool, &depth_sum, &link](int remaining) {
    depth_sum.fetch_add(1);
    if (remaining > 0) {
      pool.Submit([&link, remaining] { link(remaining - 1); });
    }
  };
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&link] { link(4); });
  }
  pool.Wait();
  EXPECT_EQ(depth_sum.load(), 50);
}

TEST(ThreadPoolTest, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 10);
}

}  // namespace
}  // namespace iccache
