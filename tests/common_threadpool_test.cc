#include "src/common/thread_pool.h"

#include <atomic>
#include <vector>

#include <gtest/gtest.h>

namespace iccache {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();
  SUCCEED();
}

TEST(ThreadPoolTest, ParallelPartialSumsAggregate) {
  ThreadPool pool(2);
  std::vector<long> partials(8, 0);
  for (int w = 0; w < 8; ++w) {
    pool.Submit([&partials, w] {
      long sum = 0;
      for (int i = 0; i < 1000; ++i) {
        sum += w * 1000 + i;
      }
      partials[w] = sum;
    });
  }
  pool.Wait();
  long total = 0;
  for (long p : partials) {
    total += p;
  }
  long expected = 0;
  for (int i = 0; i < 8000; ++i) {
    expected += i;
  }
  EXPECT_EQ(total, expected);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; });
  pool.Wait();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, ReusableAcrossWaves) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int wave = 0; wave < 5; ++wave) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), (wave + 1) * 20);
  }
}

TEST(ThreadPoolTest, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 10);
}

}  // namespace
}  // namespace iccache
