#include <memory>

#include <gtest/gtest.h>

#include "src/common/stats.h"
#include "src/core/example_cache.h"
#include "src/core/proxy_model.h"
#include "src/core/selector.h"
#include "src/llm/model_profile.h"
#include "src/workload/query_generator.h"

namespace iccache {
namespace {

std::shared_ptr<const Embedder> SharedEmbedder() {
  return std::make_shared<HashingEmbedder>();
}

TEST(ProxyFeaturesTest, FeatureLayout) {
  const ProxyFeatures f = MakeProxyFeatures(0.8, 0.9, 0.785, 0.60, true, 512);
  EXPECT_EQ(f.x[0], 1.0);
  // Similarity is recentered around the 0.5 anisotropy baseline.
  EXPECT_NEAR(f.x[1], 0.6, 1e-12);
  EXPECT_NEAR(f.x[2], 0.9, 1e-12);
  EXPECT_NEAR(f.x[3], 0.185, 1e-12);
  EXPECT_EQ(f.x[4], 1.0);
  EXPECT_NEAR(f.x[5], 0.5, 1e-12);
  EXPECT_NEAR(f.x[6], 0.54, 1e-12);
}

TEST(ProxyFeaturesTest, InputsClamped) {
  const ProxyFeatures f = MakeProxyFeatures(1.5, -0.5, 2.0, 0.0, false, 1 << 20);
  EXPECT_EQ(f.x[1], 1.0);
  EXPECT_EQ(f.x[2], 0.0);
  EXPECT_EQ(f.x[3], 1.0);
  EXPECT_EQ(f.x[5], 1.0);
}

TEST(ProxyModelTest, PriorFavorsRelevantHighQuality) {
  ProxyUtilityModel model;
  const double good = model.Predict(MakeProxyFeatures(0.95, 0.9, 0.785, 0.6, true, 200));
  const double bad = model.Predict(MakeProxyFeatures(0.1, 0.2, 0.785, 0.6, false, 200));
  EXPECT_GT(good, bad);
}

TEST(ProxyModelTest, PredictionsInUnitInterval) {
  ProxyUtilityModel model;
  for (double sim : {0.0, 0.5, 1.0}) {
    for (double q : {0.0, 0.5, 1.0}) {
      const double p = model.Predict(MakeProxyFeatures(sim, q, 0.8, 0.6, true, 100));
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
    }
  }
}

TEST(ProxyModelTest, LearnsSyntheticLabelFunction) {
  // Ground truth: an example helps iff it is both similar and high quality.
  ProxyUtilityModel model;
  Rng rng(61);
  for (int i = 0; i < 4000; ++i) {
    const double sim = rng.Uniform();
    const double quality = rng.Uniform();
    const double label = (sim > 0.6 && quality > 0.6) ? 1.0 : 0.0;
    model.Update(MakeProxyFeatures(sim, quality, 0.785, 0.6, true, 200), label);
  }
  EXPECT_GT(model.updates(), 0u);
  const double helpful = model.Predict(MakeProxyFeatures(0.9, 0.9, 0.785, 0.6, true, 200));
  const double useless = model.Predict(MakeProxyFeatures(0.2, 0.3, 0.785, 0.6, true, 200));
  EXPECT_GT(helpful, useless + 0.3);
}

TEST(ProxyModelTest, UpdateMovesPredictionTowardLabel) {
  ProxyUtilityModel model;
  const ProxyFeatures f = MakeProxyFeatures(0.5, 0.5, 0.785, 0.6, true, 200);
  const double before = model.Predict(f);
  for (int i = 0; i < 50; ++i) {
    model.Update(f, 1.0);
  }
  EXPECT_GT(model.Predict(f), before);
  for (int i = 0; i < 200; ++i) {
    model.Update(f, 0.0);
  }
  EXPECT_LT(model.Predict(f), 0.5);
}

class SelectorFixture : public ::testing::Test {
 protected:
  SelectorFixture()
      : profile_(GetDatasetProfile(DatasetId::kMsMarco)),
        gen_(profile_, 71),
        cache_(SharedEmbedder()),
        selector_(&cache_, &proxy_) {
    catalog_ = std::make_unique<ModelCatalog>();
  }

  // Seeds the cache with examples; high quality on even topics, junk on odd.
  void SeedCache(size_t count) {
    Rng rng(72);
    for (size_t i = 0; i < count; ++i) {
      const Request req = gen_.Next();
      const bool good = req.topic_id % 2 == 0;
      cache_.Put(req, "resp", good ? 0.85 + 0.1 * rng.Uniform() : 0.15,
                 /*source_capability=*/0.785, /*response_tokens=*/100, /*now=*/0.0);
    }
  }

  DatasetProfile profile_;
  QueryGenerator gen_;
  ExampleCache cache_;
  ProxyUtilityModel proxy_;
  ExampleSelector selector_;
  std::unique_ptr<ModelCatalog> catalog_;
};

TEST_F(SelectorFixture, EmptyCacheSelectsNothing) {
  const auto selected = selector_.Select(gen_.Next(), catalog_->Get("gemma-2-2b"), 0.0);
  EXPECT_TRUE(selected.empty());
}

TEST_F(SelectorFixture, SelectsAtMostMaxExamples) {
  SeedCache(500);
  for (int i = 0; i < 20; ++i) {
    const auto selected = selector_.Select(gen_.Next(), catalog_->Get("gemma-2-2b"), 0.0);
    EXPECT_LE(selected.size(), selector_.config().max_examples);
  }
}

TEST_F(SelectorFixture, SelectedExamplesAreRelevant) {
  SeedCache(500);
  RunningStat similarity;
  for (int i = 0; i < 50; ++i) {
    for (const auto& sel : selector_.Select(gen_.Next(), catalog_->Get("gemma-2-2b"), 0.0)) {
      similarity.Add(sel.similarity);
    }
  }
  ASSERT_GT(similarity.count(), 0u);
  EXPECT_GT(similarity.mean(), 0.6);
}

TEST_F(SelectorFixture, ThresholdFiltersLowUtility) {
  SeedCache(300);
  selector_.set_utility_threshold(0.99);  // nothing clears this bar
  const auto selected = selector_.Select(gen_.Next(), catalog_->Get("gemma-2-2b"), 0.0);
  EXPECT_TRUE(selected.empty());
}

TEST_F(SelectorFixture, Stage1OnlyIgnoresThreshold) {
  SeedCache(300);
  selector_.set_utility_threshold(0.99);
  const auto selected = selector_.SelectStage1Only(gen_.Next(), catalog_->Get("gemma-2-2b"), 0.0);
  EXPECT_FALSE(selected.empty());
}

TEST_F(SelectorFixture, SelectionRecordsAccesses) {
  SeedCache(200);
  const auto selected = selector_.Select(gen_.Next(), catalog_->Get("gemma-2-2b"), 3.0);
  for (const auto& sel : selected) {
    const Example* example = cache_.Get(sel.example_id);
    ASSERT_NE(example, nullptr);
    EXPECT_GE(example->access_count, 1u);
    EXPECT_EQ(example->last_access_time, 3.0);
  }
}

TEST_F(SelectorFixture, OrderingPutsBestLast) {
  SeedCache(500);
  for (int i = 0; i < 30; ++i) {
    const auto selected = selector_.Select(gen_.Next(), catalog_->Get("gemma-2-2b"), 0.0);
    if (selected.size() >= 2) {
      EXPECT_LE(selected.front().predicted_utility,
                selected.back().predicted_utility + 1e-9);
    }
  }
}

TEST_F(SelectorFixture, TokenBudgetRespected) {
  SeedCache(300);
  const ModelProfile& model = catalog_->Get("gemma-2-2b");
  const int budget = static_cast<int>(selector_.config().context_budget_fraction *
                                      static_cast<double>(model.context_window));
  for (int i = 0; i < 20; ++i) {
    int tokens = 0;
    for (const auto& sel : selector_.Select(gen_.Next(), model, 0.0)) {
      tokens += cache_.Get(sel.example_id)->PromptTokens();
    }
    EXPECT_LE(tokens, budget);
  }
}

TEST_F(SelectorFixture, TinyContextWindowLimitsSelection) {
  SeedCache(300);
  ModelProfile tiny = catalog_->Get("gemma-2-2b");
  tiny.context_window = 150;  // roughly one example
  for (int i = 0; i < 10; ++i) {
    EXPECT_LE(selector_.Select(gen_.Next(), tiny, 0.0).size(), 1u);
  }
}

TEST_F(SelectorFixture, FeedbackTrainsProxyTowardQualityGains) {
  SeedCache(400);
  const ModelProfile& model = catalog_->Get("gemma-2-2b");
  // Feed positive gains for good-topic examples, negative for junk ones.
  for (int i = 0; i < 300; ++i) {
    const Request req = gen_.Next();
    const auto selected = selector_.Select(req, model, 0.0);
    if (selected.empty()) {
      continue;
    }
    const double gain = (req.topic_id % 2 == 0) ? 0.3 : -0.3;
    selector_.OnFeedback(req, selected, model, gain);
  }
  EXPECT_GT(proxy_.updates(), 0u);
}

TEST_F(SelectorFixture, DuplicateExamplesDeduplicated) {
  // Insert the same text many times; diversity must keep at most one.
  Request req = gen_.Next();
  for (int i = 0; i < 10; ++i) {
    cache_.Put(req, "resp", 0.9, 0.785, 100, 0.0);
  }
  const auto selected = selector_.Select(req, catalog_->Get("gemma-2-2b"), 0.0);
  EXPECT_LE(selected.size(), 1u);
}

TEST_F(SelectorFixture, ThresholdAdaptationPicksProfitableGridPoint) {
  SeedCache(400);
  const ModelProfile& model = catalog_->Get("gemma-2-2b");
  SelectorConfig config;
  config.adapt_every_n_requests = 64;
  ExampleSelector adaptive(&cache_, &proxy_, config);
  // Strong positive gains: the most permissive threshold (more examples kept)
  // accumulates the largest benefit, so adaptation should move down.
  for (int i = 0; i < 200; ++i) {
    const Request req = gen_.Next();
    const auto selected = adaptive.Select(req, model, 0.0);
    if (!selected.empty()) {
      adaptive.OnFeedback(req, selected, model, 0.5);
    }
  }
  EXPECT_LE(adaptive.utility_threshold(), config.initial_utility_threshold + 1e-9);
}

}  // namespace
}  // namespace iccache
