#include "src/common/mathutil.h"

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

namespace iccache {
namespace {

TEST(SigmoidTest, CenterAndLimits) {
  EXPECT_DOUBLE_EQ(Sigmoid(0.0), 0.5);
  EXPECT_NEAR(Sigmoid(100.0), 1.0, 1e-12);
  EXPECT_NEAR(Sigmoid(-100.0), 0.0, 1e-12);
}

TEST(SigmoidTest, IsMonotone) {
  double prev = 0.0;
  for (double x = -10.0; x <= 10.0; x += 0.25) {
    const double y = Sigmoid(x);
    EXPECT_GT(y, prev);
    prev = y;
  }
}

TEST(SigmoidTest, SymmetryIdentity) {
  for (double x : {0.3, 1.7, 4.2}) {
    EXPECT_NEAR(Sigmoid(x) + Sigmoid(-x), 1.0, 1e-12);
  }
}

TEST(LogSumExpTest, MatchesDirectComputationForSmallValues) {
  const std::vector<double> xs = {0.1, 0.2, 0.3};
  double direct = 0.0;
  for (double x : xs) {
    direct += std::exp(x);
  }
  EXPECT_NEAR(LogSumExp(xs), std::log(direct), 1e-12);
}

TEST(LogSumExpTest, StableForLargeValues) {
  const std::vector<double> xs = {1000.0, 1000.0};
  EXPECT_NEAR(LogSumExp(xs), 1000.0 + std::log(2.0), 1e-9);
}

TEST(LogSumExpTest, EmptyIsNegativeInfinity) {
  EXPECT_EQ(LogSumExp({}), -std::numeric_limits<double>::infinity());
}

TEST(SoftmaxTest, SumsToOneAndOrdersByLogit) {
  const std::vector<double> probs = Softmax({1.0, 2.0, 3.0});
  EXPECT_NEAR(probs[0] + probs[1] + probs[2], 1.0, 1e-12);
  EXPECT_LT(probs[0], probs[1]);
  EXPECT_LT(probs[1], probs[2]);
}

TEST(SoftmaxTest, TemperatureSharpensDistribution) {
  const std::vector<double> cold = Softmax({1.0, 2.0}, 0.1);
  const std::vector<double> hot = Softmax({1.0, 2.0}, 10.0);
  EXPECT_GT(cold[1], hot[1]);
  EXPECT_NEAR(hot[0], 0.5, 0.05);
}

TEST(SoftmaxTest, EmptyInput) { EXPECT_TRUE(Softmax({}).empty()); }

TEST(ClampTest, Basics) {
  EXPECT_EQ(Clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_EQ(Clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_EQ(Clamp(0.5, 0.0, 1.0), 0.5);
}

TEST(VectorOpsTest, DotAndNorm) {
  const std::vector<float> a = {1.0f, 2.0f, 3.0f};
  const std::vector<float> b = {4.0f, -5.0f, 6.0f};
  EXPECT_NEAR(Dot(a, b), 4.0 - 10.0 + 18.0, 1e-9);
  EXPECT_NEAR(L2Norm(a), std::sqrt(14.0), 1e-9);
}

TEST(VectorOpsTest, NormalizeProducesUnitVector) {
  std::vector<float> v = {3.0f, 4.0f};
  NormalizeL2(v);
  EXPECT_NEAR(L2Norm(v), 1.0, 1e-6);
  EXPECT_NEAR(v[0], 0.6, 1e-6);
}

TEST(VectorOpsTest, NormalizeZeroVectorIsNoop) {
  std::vector<float> v = {0.0f, 0.0f};
  NormalizeL2(v);
  EXPECT_EQ(v[0], 0.0f);
  EXPECT_EQ(v[1], 0.0f);
}

TEST(CosineSimilarityTest, ParallelAndOrthogonal) {
  const std::vector<float> x = {1.0f, 0.0f};
  const std::vector<float> y = {0.0f, 1.0f};
  const std::vector<float> x2 = {2.0f, 0.0f};
  EXPECT_NEAR(CosineSimilarity(x, x2), 1.0, 1e-9);
  EXPECT_NEAR(CosineSimilarity(x, y), 0.0, 1e-9);
  const std::vector<float> neg = {-1.0f, 0.0f};
  EXPECT_NEAR(CosineSimilarity(x, neg), -1.0, 1e-9);
}

TEST(CosineSimilarityTest, ZeroVectorYieldsZero) {
  EXPECT_EQ(CosineSimilarity({0.0f, 0.0f}, {1.0f, 0.0f}), 0.0);
}

TEST(SquaredL2DistanceTest, Basics) {
  EXPECT_NEAR(SquaredL2Distance({0.0f, 0.0f}, {3.0f, 4.0f}), 25.0, 1e-9);
  EXPECT_EQ(SquaredL2Distance({1.0f}, {1.0f}), 0.0);
}

TEST(MeanStdDevTest, KnownValues) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(Mean(xs), 5.0, 1e-12);
  EXPECT_NEAR(StdDev(xs), 2.0, 1e-12);
}

TEST(MeanStdDevTest, DegenerateInputs) {
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_EQ(StdDev({}), 0.0);
  EXPECT_EQ(StdDev({3.0}), 0.0);
}

TEST(PearsonCorrelationTest, PerfectPositiveAndNegative) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> up = {2.0, 4.0, 6.0, 8.0};
  const std::vector<double> down = {8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(PearsonCorrelation(xs, up), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation(xs, down), -1.0, 1e-12);
}

TEST(PearsonCorrelationTest, ConstantSideYieldsZero) {
  EXPECT_EQ(PearsonCorrelation({1.0, 1.0, 1.0}, {1.0, 2.0, 3.0}), 0.0);
}

TEST(PearsonCorrelationTest, MismatchedSizesYieldZero) {
  EXPECT_EQ(PearsonCorrelation({1.0, 2.0}, {1.0, 2.0, 3.0}), 0.0);
}

// Softmax should be invariant under constant shifts of the logits.
class SoftmaxShiftSweep : public ::testing::TestWithParam<double> {};

TEST_P(SoftmaxShiftSweep, ShiftInvariance) {
  const double shift = GetParam();
  const std::vector<double> base = {0.5, -1.0, 2.0, 0.0};
  std::vector<double> shifted = base;
  for (auto& x : shifted) {
    x += shift;
  }
  const std::vector<double> p1 = Softmax(base);
  const std::vector<double> p2 = Softmax(shifted);
  for (size_t i = 0; i < base.size(); ++i) {
    EXPECT_NEAR(p1[i], p2[i], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Shifts, SoftmaxShiftSweep,
                         ::testing::Values(-100.0, -1.0, 0.0, 1.0, 50.0, 500.0));

}  // namespace
}  // namespace iccache
