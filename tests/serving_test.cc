#include "src/serving/cluster.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/llm/model_profile.h"

namespace iccache {
namespace {

ModelProfile TestModel(double decode_tps = 100.0, double prefill_tps = 10000.0,
                       double ttft_base = 0.01) {
  ModelProfile model;
  model.name = "test-model";
  model.decode_tps = decode_tps;
  model.prefill_tps = prefill_tps;
  model.ttft_base_s = ttft_base;
  return model;
}

ServingRequest MakeRequest(uint64_t id, double arrival, int prompt = 100, int output = 50) {
  ServingRequest req;
  req.id = id;
  req.arrival_time = arrival;
  req.prompt_tokens = prompt;
  req.output_tokens = output;
  return req;
}

TEST(GpuServerTest, SingleRequestZeroLoadLatency) {
  GpuServer server(TestModel(), ServerConfig{});
  server.Enqueue(MakeRequest(1, 0.0, 100, 50), 0.0);
  std::vector<CompletionRecord> completions;
  double now = 0.0;
  while (true) {
    const double end = server.StartIteration(now);
    if (end < 0.0) {
      break;
    }
    now = end;
    server.FinishIteration(now, &completions);
  }
  ASSERT_EQ(completions.size(), 1u);
  const CompletionRecord& record = completions[0];
  // Prefill: 0.01 + 100/10000 = 0.02s; decode: 50 tokens at 10ms.
  EXPECT_NEAR(record.Ttft(), 0.02 + 0.01, 1e-9);  // prefill iter includes 1st decode token
  EXPECT_NEAR(record.E2eLatency(), 0.02 + 50 * 0.01, 1e-9);
  EXPECT_EQ(record.output_tokens, 50);
}

TEST(GpuServerTest, BatchSharesDecodeIterations) {
  ServerConfig config;
  config.max_batch_size = 8;
  GpuServer server(TestModel(), config);
  for (uint64_t i = 0; i < 4; ++i) {
    server.Enqueue(MakeRequest(i, 0.0, 100, 20), 0.0);
  }
  std::vector<CompletionRecord> completions;
  double now = 0.0;
  while (true) {
    const double end = server.StartIteration(now);
    if (end < 0.0) {
      break;
    }
    now = end;
    server.FinishIteration(now, &completions);
  }
  ASSERT_EQ(completions.size(), 4u);
  // All four decode together: completion spread should be zero.
  for (const auto& record : completions) {
    EXPECT_NEAR(record.completion_time, completions[0].completion_time, 1e-9);
  }
  // Batched decode is far faster than serial: serial would take 4*20 steps.
  EXPECT_LT(now, 4 * 20 * 0.01);
}

TEST(GpuServerTest, BatchSlowdownInflatesPerRequestTbt) {
  ServerConfig config;
  config.max_batch_size = 16;
  config.batch_decode_slowdown = 0.05;
  GpuServer server(TestModel(), config);
  for (uint64_t i = 0; i < 16; ++i) {
    server.Enqueue(MakeRequest(i, 0.0, 10, 100), 0.0);
  }
  std::vector<CompletionRecord> completions;
  double now = 0.0;
  while (true) {
    const double end = server.StartIteration(now);
    if (end < 0.0) {
      break;
    }
    now = end;
    server.FinishIteration(now, &completions);
  }
  ASSERT_EQ(completions.size(), 16u);
  // Step time = tbt0 * (1 + 0.05 * 15) = 1.75 * tbt0.
  EXPECT_NEAR(completions[0].Tbt(), 0.01 * 1.75, 1e-3);
}

TEST(GpuServerTest, QueueBeyondBatchWaits) {
  ServerConfig config;
  config.max_batch_size = 2;
  GpuServer server(TestModel(), config);
  for (uint64_t i = 0; i < 4; ++i) {
    server.Enqueue(MakeRequest(i, 0.0, 10, 10), 0.0);
  }
  EXPECT_EQ(server.QueueLength(), 4u);
  std::vector<CompletionRecord> completions;
  double now = 0.0;
  while (true) {
    const double end = server.StartIteration(now);
    if (end < 0.0) {
      break;
    }
    now = end;
    server.FinishIteration(now, &completions);
  }
  ASSERT_EQ(completions.size(), 4u);
  // Later requests must finish strictly after the first batch.
  std::vector<double> times;
  for (const auto& record : completions) {
    times.push_back(record.completion_time);
  }
  std::sort(times.begin(), times.end());
  EXPECT_GT(times[2], times[0]);
}

TEST(ClusterSimTest, SubmitToUnknownPoolFails) {
  ClusterSim cluster;
  EXPECT_FALSE(cluster.Submit("nope", MakeRequest(1, 0.0)).ok());
}

TEST(ClusterSimTest, RunUntilIdleCompletesEverything) {
  ClusterSim cluster;
  cluster.AddPool(TestModel(), 2);
  for (uint64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(cluster.Submit("test-model", MakeRequest(i, 0.0)).ok());
  }
  cluster.RunUntilIdle();
  EXPECT_EQ(cluster.completions().size(), 20u);
  EXPECT_EQ(cluster.PoolInFlight("test-model"), 0u);
}

TEST(ClusterSimTest, LeastLoadedDispatchBalancesReplicas) {
  ClusterSim cluster;
  cluster.AddPool(TestModel(), 4);
  for (uint64_t i = 0; i < 40; ++i) {
    cluster.Submit("test-model", MakeRequest(i, 0.0, 10, 200));
  }
  // With least-loaded dispatch over 4 replicas, in-flight counts can differ by
  // at most a small constant right after submission.
  EXPECT_EQ(cluster.PoolInFlight("test-model"), 40u);
  cluster.RunUntilIdle();
  EXPECT_EQ(cluster.completions().size(), 40u);
}

TEST(ClusterSimTest, AdvanceToProcessesDueEventsOnly) {
  ClusterSim cluster;
  cluster.AddPool(TestModel(), 1);
  cluster.Submit("test-model", MakeRequest(1, 0.0, 10, 1000));  // ~10s of decode
  cluster.AdvanceTo(1.0);
  EXPECT_EQ(cluster.completions().size(), 0u);
  EXPECT_NEAR(cluster.now(), 1.0, 1e-9);
  cluster.RunUntilIdle();
  EXPECT_EQ(cluster.completions().size(), 1u);
  EXPECT_GT(cluster.now(), 5.0);
}

TEST(ClusterSimTest, LatencyGrowsUnderOverload) {
  // Submitting far beyond capacity must inflate average E2E latency.
  auto run_at_rate = [](double rps) {
    ClusterSim cluster;
    cluster.AddPool(TestModel(), 1);
    const int n = 200;
    for (int i = 0; i < n; ++i) {
      cluster.Submit("test-model", MakeRequest(i, i / rps, 50, 50));
    }
    cluster.RunUntilIdle();
    PercentileTracker latency;
    for (const auto& record : cluster.completions()) {
      latency.Add(record.E2eLatency());
    }
    return latency.mean();
  };
  const double light = run_at_rate(1.0);
  const double heavy = run_at_rate(50.0);
  EXPECT_GT(heavy, light * 2.0);
}

TEST(ClusterSimTest, PoolLoadReflectsBacklog) {
  ClusterSim cluster;
  cluster.AddPool(TestModel(), 1, ServerConfig{.max_batch_size = 4, .batch_decode_slowdown = 0.05});
  EXPECT_EQ(cluster.PoolLoad("test-model"), 0.0);
  for (uint64_t i = 0; i < 8; ++i) {
    cluster.Submit("test-model", MakeRequest(i, 0.0, 10, 500));
  }
  EXPECT_NEAR(cluster.PoolLoad("test-model"), 2.0, 1e-9);  // 8 in flight / capacity 4
  cluster.RunUntilIdle();
  EXPECT_EQ(cluster.PoolLoad("test-model"), 0.0);
}

TEST(ClusterSimTest, TotalGpusSumsPools) {
  ClusterSim cluster;
  ModelProfile big = TestModel();
  big.name = "big";
  big.gpus_required = 8;
  ModelProfile small = TestModel();
  small.name = "small";
  small.gpus_required = 1;
  cluster.AddPool(big, 2);
  cluster.AddPool(small, 4);
  EXPECT_EQ(cluster.TotalGpus(), 20);
}

TEST(ClusterSimTest, CompletionRecordAccountingConsistent) {
  ClusterSim cluster;
  cluster.AddPool(TestModel(), 1);
  cluster.Submit("test-model", MakeRequest(7, 2.5, 80, 40));
  cluster.RunUntilIdle();
  ASSERT_EQ(cluster.completions().size(), 1u);
  const CompletionRecord& record = cluster.completions()[0];
  EXPECT_EQ(record.id, 7u);
  EXPECT_EQ(record.model, "test-model");
  EXPECT_GE(record.admission_time, record.arrival_time);
  EXPECT_GT(record.first_token_time, record.admission_time);
  EXPECT_GE(record.completion_time, record.first_token_time);
  EXPECT_GE(record.QueueDelay(), 0.0);
}

TEST(ClusterSimTest, TakeCompletionsDrains) {
  ClusterSim cluster;
  cluster.AddPool(TestModel(), 1);
  cluster.Submit("test-model", MakeRequest(1, 0.0));
  cluster.RunUntilIdle();
  EXPECT_EQ(cluster.TakeCompletions().size(), 1u);
  EXPECT_TRUE(cluster.completions().empty());
}

TEST(ClusterSimTest, FasterModelSustainsHigherThroughput) {
  // Throughput shape behind Figure 18: a model with ~4x decode speed clears
  // the same workload in ~4x less time.
  auto makespan = [](double decode_tps) {
    ClusterSim cluster;
    ModelProfile model = TestModel(decode_tps);
    cluster.AddPool(model, 1);
    for (int i = 0; i < 100; ++i) {
      cluster.Submit("test-model", MakeRequest(i, 0.0, 50, 100));
    }
    cluster.RunUntilIdle();
    return cluster.now();
  };
  const double slow = makespan(30.0);
  const double fast = makespan(120.0);
  EXPECT_GT(slow / fast, 3.0);
  EXPECT_LT(slow / fast, 5.0);
}

class ReplicaScalingSweep : public ::testing::TestWithParam<int> {};

TEST_P(ReplicaScalingSweep, MoreReplicasReduceMakespan) {
  const int replicas = GetParam();
  ClusterSim cluster;
  cluster.AddPool(TestModel(), replicas);
  for (int i = 0; i < 64; ++i) {
    cluster.Submit("test-model", MakeRequest(i, 0.0, 50, 100));
  }
  cluster.RunUntilIdle();
  ClusterSim single;
  single.AddPool(TestModel(), 1);
  for (int i = 0; i < 64; ++i) {
    single.Submit("test-model", MakeRequest(i, 0.0, 50, 100));
  }
  single.RunUntilIdle();
  if (replicas > 1) {
    EXPECT_LT(cluster.now(), single.now());
  } else {
    EXPECT_NEAR(cluster.now(), single.now(), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Replicas, ReplicaScalingSweep, ::testing::Values(1, 2, 4, 8));

// --- Event-ordering coverage: AdvanceTo / RunUntilIdle interleavings -------

TEST(ClusterSimTest, InterleavedAdvanceMatchesSubmitAllThenDrain) {
  // Driving the clock request-by-request (the serving driver's pattern) must
  // produce exactly the same completions as submitting everything up front
  // and draining once: Submit self-advances to the arrival instant.
  auto make_requests = [] {
    std::vector<ServingRequest> requests;
    for (uint64_t i = 0; i < 30; ++i) {
      requests.push_back(MakeRequest(i, 0.3 * static_cast<double>(i), 40 + (i % 7) * 10,
                                     20 + (i % 5) * 15));
    }
    return requests;
  };

  ClusterSim interleaved;
  interleaved.AddPool(TestModel(), 2);
  for (const ServingRequest& request : make_requests()) {
    interleaved.AdvanceTo(request.arrival_time);
    ASSERT_TRUE(interleaved.Submit("test-model", request).ok());
  }
  interleaved.RunUntilIdle();

  ClusterSim batched;
  batched.AddPool(TestModel(), 2);
  for (const ServingRequest& request : make_requests()) {
    ASSERT_TRUE(batched.Submit("test-model", request).ok());
  }
  batched.RunUntilIdle();

  ASSERT_EQ(interleaved.completions().size(), batched.completions().size());
  for (size_t i = 0; i < interleaved.completions().size(); ++i) {
    EXPECT_EQ(interleaved.completions()[i].id, batched.completions()[i].id);
    EXPECT_DOUBLE_EQ(interleaved.completions()[i].completion_time,
                     batched.completions()[i].completion_time);
  }
}

TEST(ClusterSimTest, ClockIsMonotoneUnderArbitraryAdvanceCalls) {
  ClusterSim cluster;
  cluster.AddPool(TestModel(), 1);
  cluster.Submit("test-model", MakeRequest(1, 0.0, 10, 200));
  cluster.AdvanceTo(1.0);
  EXPECT_NEAR(cluster.now(), 1.0, 1e-12);
  cluster.AdvanceTo(0.2);  // going "backwards" must not rewind the clock
  EXPECT_NEAR(cluster.now(), 1.0, 1e-12);
  cluster.AdvanceTo(1.5);
  EXPECT_NEAR(cluster.now(), 1.5, 1e-12);
  cluster.RunUntilIdle();
  EXPECT_GE(cluster.now(), 1.5);
}

TEST(ClusterSimTest, CompletionsAppendInNondecreasingTimeOrder) {
  ClusterSim cluster;
  cluster.AddPool(TestModel(), 3);
  Rng rng(0x0bde4);
  for (uint64_t i = 0; i < 60; ++i) {
    cluster.Submit("test-model",
                   MakeRequest(i, rng.Uniform(0.0, 5.0), 20 + static_cast<int>(rng.UniformInt(80)),
                               10 + static_cast<int>(rng.UniformInt(120))));
    if (i % 7 == 0) {
      cluster.AdvanceTo(static_cast<double>(i) * 0.1);  // interleave partial drains
    }
  }
  cluster.RunUntilIdle();
  ASSERT_EQ(cluster.completions().size(), 60u);
  for (size_t i = 1; i < cluster.completions().size(); ++i) {
    EXPECT_GE(cluster.completions()[i].completion_time,
              cluster.completions()[i - 1].completion_time);
  }
}

TEST(ClusterSimTest, PoolLoadAboveOneImpliesQueueingDelay) {
  ServerConfig config;
  config.max_batch_size = 4;
  ClusterSim cluster;
  cluster.AddPool(TestModel(), 1, config);
  for (uint64_t i = 0; i < 12; ++i) {
    cluster.Submit("test-model", MakeRequest(i, 0.0, 20, 100));
  }
  // 12 in flight over batch capacity 4: requests are necessarily queueing.
  EXPECT_GT(cluster.PoolLoad("test-model"), 1.0);
  cluster.RunUntilIdle();
  ASSERT_EQ(cluster.completions().size(), 12u);
  size_t delayed = 0;
  for (const auto& record : cluster.completions()) {
    EXPECT_GE(record.QueueDelay(), 0.0);
    if (record.QueueDelay() > 0.0) {
      ++delayed;
    }
  }
  EXPECT_GE(delayed, 8u);  // everything beyond the first batch waited
}

}  // namespace
}  // namespace iccache
