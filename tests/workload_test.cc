#include "src/workload/query_generator.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/mathutil.h"
#include "src/common/stats.h"
#include "src/embedding/embedder.h"
#include "src/workload/trace.h"

namespace iccache {
namespace {

TEST(DatasetProfileTest, AllTableOneDatasetsDefined) {
  const auto profiles = AllDatasetProfiles();
  EXPECT_EQ(profiles.size(), 8u);
  std::set<DatasetId> ids;
  for (const auto& p : profiles) {
    ids.insert(p.id);
    EXPECT_GT(p.num_topics, 0u);
    EXPECT_GT(p.example_pool_size, 0u);
    EXPECT_GT(p.request_count, 0u);
    EXPECT_GT(p.difficulty_alpha, 0.0);
    EXPECT_GT(p.difficulty_beta, 0.0);
  }
  EXPECT_EQ(ids.size(), 8u);
}

TEST(DatasetProfileTest, TableOneSizesMatchPaper) {
  EXPECT_EQ(GetDatasetProfile(DatasetId::kMsMarco).example_pool_size, 808731u);
  EXPECT_EQ(GetDatasetProfile(DatasetId::kMsMarco).request_count, 101092u);
  EXPECT_EQ(GetDatasetProfile(DatasetId::kLmsysChat).example_pool_size, 273043u);
  EXPECT_EQ(GetDatasetProfile(DatasetId::kNl2Bash).example_pool_size, 8090u);
  EXPECT_EQ(GetDatasetProfile(DatasetId::kMath500).request_count, 5000u);
}

TEST(DatasetProfileTest, TaskAssignmentsMatchPaper) {
  EXPECT_EQ(GetDatasetProfile(DatasetId::kAlpaca).task, TaskType::kConversation);
  EXPECT_EQ(GetDatasetProfile(DatasetId::kMsMarco).task, TaskType::kQuestionAnswering);
  EXPECT_EQ(GetDatasetProfile(DatasetId::kWmt16).task, TaskType::kTranslation);
  EXPECT_EQ(GetDatasetProfile(DatasetId::kNl2Bash).task, TaskType::kCodeGeneration);
  EXPECT_EQ(GetDatasetProfile(DatasetId::kMath500).task, TaskType::kMathReasoning);
}

TEST(DatasetProfileTest, NamesAreUnique) {
  std::set<std::string> names;
  for (const auto& p : AllDatasetProfiles()) {
    names.insert(DatasetName(p.id));
  }
  EXPECT_EQ(names.size(), 8u);
}

TEST(QueryGeneratorTest, DeterministicForSeed) {
  const DatasetProfile profile = GetDatasetProfile(DatasetId::kNaturalQuestions);
  QueryGenerator a(profile, 123);
  QueryGenerator b(profile, 123);
  for (int i = 0; i < 50; ++i) {
    const Request ra = a.Next();
    const Request rb = b.Next();
    EXPECT_EQ(ra.text, rb.text);
    EXPECT_EQ(ra.topic_id, rb.topic_id);
    EXPECT_EQ(ra.intent_id, rb.intent_id);
    EXPECT_DOUBLE_EQ(ra.difficulty, rb.difficulty);
  }
}

TEST(QueryGeneratorTest, FieldsWithinBounds) {
  const DatasetProfile profile = GetDatasetProfile(DatasetId::kLmsysChat);
  QueryGenerator gen(profile, 7);
  for (const Request& req : gen.Generate(500)) {
    EXPECT_GE(req.difficulty, 0.0);
    EXPECT_LE(req.difficulty, 1.0);
    EXPECT_LT(req.topic_id, profile.num_topics);
    EXPECT_LT(req.intent_id, profile.intents_per_topic);
    EXPECT_GE(req.input_tokens, 4);
    EXPECT_LE(req.input_tokens, 4096);
    EXPECT_GE(req.target_output_tokens, 8);
    EXPECT_FALSE(req.text.empty());
    EXPECT_EQ(req.dataset, DatasetId::kLmsysChat);
    EXPECT_EQ(req.task, TaskType::kConversation);
  }
}

TEST(QueryGeneratorTest, IdsAreSequentialAndUnique) {
  QueryGenerator gen(GetDatasetProfile(DatasetId::kAlpaca), 1);
  uint64_t prev = 0;
  for (const Request& req : gen.Generate(100)) {
    EXPECT_GT(req.id, prev);
    prev = req.id;
  }
}

TEST(QueryGeneratorTest, IntentDifficultyIsStable) {
  const DatasetProfile profile = GetDatasetProfile(DatasetId::kMath500);
  const double d1 = QueryGenerator::IntentDifficulty(profile, 10, 2);
  const double d2 = QueryGenerator::IntentDifficulty(profile, 10, 2);
  EXPECT_DOUBLE_EQ(d1, d2);
  EXPECT_NE(QueryGenerator::IntentDifficulty(profile, 10, 3), d1);
}

TEST(QueryGeneratorTest, SameIntentRequestsHaveSimilarDifficulty) {
  const DatasetProfile profile = GetDatasetProfile(DatasetId::kMsMarco);
  QueryGenerator gen(profile, 99);
  std::vector<Request> requests = gen.Generate(2000);
  for (size_t i = 0; i < requests.size(); ++i) {
    for (size_t j = i + 1; j < std::min(requests.size(), i + 10); ++j) {
      if (requests[i].topic_id == requests[j].topic_id &&
          requests[i].intent_id == requests[j].intent_id) {
        EXPECT_NEAR(requests[i].difficulty, requests[j].difficulty, 0.25);
      }
    }
  }
}

TEST(QueryGeneratorTest, HarderDatasetsShiftDifficultyRight) {
  QueryGenerator easy(GetDatasetProfile(DatasetId::kMsMarco), 5);
  QueryGenerator hard(GetDatasetProfile(DatasetId::kMath500), 5);
  RunningStat easy_stat;
  RunningStat hard_stat;
  for (int i = 0; i < 1000; ++i) {
    easy_stat.Add(easy.Next().difficulty);
    hard_stat.Add(hard.Next().difficulty);
  }
  EXPECT_GT(hard_stat.mean(), easy_stat.mean() + 0.2);
}

TEST(QueryGeneratorTest, TopicPopularityIsSkewed) {
  const DatasetProfile profile = GetDatasetProfile(DatasetId::kLmsysChat);
  QueryGenerator gen(profile, 6);
  std::vector<int> counts(profile.num_topics, 0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    ++counts[gen.Next().topic_id];
  }
  std::sort(counts.rbegin(), counts.rend());
  int head = 0;
  for (int i = 0; i < 40; ++i) {
    head += counts[i];
  }
  // 1% of topics should carry far more than 1% of traffic under Zipf.
  EXPECT_GT(static_cast<double>(head) / n, 0.10);
}

TEST(QueryGeneratorTest, PaperSimilarityPrevalence) {
  // Figure 3(a): >70% of requests have a neighbour with cosine > 0.8. Checked
  // on a reduced-scale sample for test speed.
  const DatasetProfile profile = GetDatasetProfile(DatasetId::kMsMarco);
  QueryGenerator gen(profile, 11);
  HashingEmbedder embedder;
  const std::vector<Request> requests = gen.Generate(1200);
  std::vector<std::vector<float>> embeddings;
  embeddings.reserve(requests.size());
  for (const auto& req : requests) {
    embeddings.push_back(embedder.Embed(req.text));
  }
  int with_similar = 0;
  for (size_t i = 0; i < requests.size(); ++i) {
    double best = 0.0;
    for (size_t j = 0; j < requests.size(); ++j) {
      if (i != j) {
        best = std::max(best, CosineSimilarity(embeddings[i], embeddings[j]));
      }
    }
    if (best > 0.8) {
      ++with_similar;
    }
  }
  EXPECT_GT(static_cast<double>(with_similar) / requests.size(), 0.70);
}

TEST(ArrivalTraceTest, ConstantTraceEvenlySpaced) {
  TraceConfig config;
  config.kind = TraceKind::kConstant;
  config.mean_rps = 2.0;
  config.duration_s = 100.0;
  ArrivalTrace trace(config);
  const auto arrivals = trace.GenerateArrivals();
  EXPECT_NEAR(static_cast<double>(arrivals.size()), 199.0, 2.0);
  for (size_t i = 1; i < arrivals.size(); ++i) {
    EXPECT_NEAR(arrivals[i] - arrivals[i - 1], 0.5, 1e-9);
  }
}

TEST(ArrivalTraceTest, PoissonMeanRateMatches) {
  TraceConfig config;
  config.kind = TraceKind::kPoisson;
  config.mean_rps = 5.0;
  config.duration_s = 2000.0;
  ArrivalTrace trace(config);
  const auto arrivals = trace.GenerateArrivals();
  EXPECT_NEAR(static_cast<double>(arrivals.size()) / config.duration_s, 5.0, 0.25);
}

TEST(ArrivalTraceTest, ArrivalsSortedAndInRange) {
  TraceConfig config;
  config.kind = TraceKind::kDiurnalBursty;
  config.mean_rps = 3.0;
  config.duration_s = 600.0;
  ArrivalTrace trace(config);
  const auto arrivals = trace.GenerateArrivals();
  ASSERT_FALSE(arrivals.empty());
  EXPECT_TRUE(std::is_sorted(arrivals.begin(), arrivals.end()));
  EXPECT_GE(arrivals.front(), 0.0);
  EXPECT_LT(arrivals.back(), config.duration_s);
}

TEST(ArrivalTraceTest, BurstyTraceHasLargePeakToTroughRatio) {
  // Figure 2(b): minute-level spikes reach ~25x the off-peak rate.
  TraceConfig config;
  config.kind = TraceKind::kDiurnalBursty;
  config.mean_rps = 2.0;
  config.duration_s = 3 * 3600.0;
  config.bursts_per_hour = 8.0;
  ArrivalTrace trace(config);
  const auto arrivals = trace.GenerateArrivals();
  const auto rps = BinArrivalRate(arrivals, config.duration_s, 60.0);
  const double peak = *std::max_element(rps.begin(), rps.end());
  double trough = 1e300;
  for (double r : rps) {
    if (r > 0.0) {
      trough = std::min(trough, r);
    }
  }
  EXPECT_GT(peak / trough, 8.0);
}

TEST(ArrivalTraceTest, RateAtReflectsBursts) {
  TraceConfig config;
  config.kind = TraceKind::kDiurnalBursty;
  config.mean_rps = 2.0;
  config.duration_s = 3600.0;
  ArrivalTrace trace(config);
  double max_rate = 0.0;
  for (double t = 0.0; t < config.duration_s; t += 1.0) {
    max_rate = std::max(max_rate, trace.RateAt(t));
  }
  EXPECT_GT(max_rate, config.mean_rps * 1.5);
}

TEST(BinArrivalRateTest, CountsPerBin) {
  const std::vector<double> arrivals = {0.1, 0.2, 0.9, 1.5, 2.7, 2.8, 2.9};
  const auto rps = BinArrivalRate(arrivals, 3.0, 1.0);
  ASSERT_EQ(rps.size(), 3u);
  EXPECT_NEAR(rps[0], 3.0, 1e-9);
  EXPECT_NEAR(rps[1], 1.0, 1e-9);
  EXPECT_NEAR(rps[2], 3.0, 1e-9);
}

TEST(BinArrivalRateTest, IgnoresOutOfRangeArrivals) {
  const auto rps = BinArrivalRate({-1.0, 5.0, 0.5}, 1.0, 1.0);
  ASSERT_EQ(rps.size(), 1u);
  EXPECT_NEAR(rps[0], 1.0, 1e-9);
}

class DatasetSweep : public ::testing::TestWithParam<DatasetId> {};

TEST_P(DatasetSweep, GeneratorProducesValidStream) {
  const DatasetProfile profile = GetDatasetProfile(GetParam());
  QueryGenerator gen(profile, 17);
  for (const Request& req : gen.Generate(200)) {
    EXPECT_EQ(req.dataset, GetParam());
    EXPECT_EQ(req.task, profile.task);
    EXPECT_GE(req.difficulty, 0.0);
    EXPECT_LE(req.difficulty, 1.0);
    EXPECT_FALSE(req.text.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetSweep,
                         ::testing::Values(DatasetId::kAlpaca, DatasetId::kLmsysChat,
                                           DatasetId::kOpenOrca, DatasetId::kMsMarco,
                                           DatasetId::kNaturalQuestions, DatasetId::kWmt16,
                                           DatasetId::kNl2Bash, DatasetId::kMath500));

}  // namespace
}  // namespace iccache
