// End-to-end integration: the full IC-Cache service in front of the
// discrete-event cluster, exercised on synthetic workloads, reproducing the
// directional claims of section 6.2 at miniature scale.
#include <memory>

#include <gtest/gtest.h>

#include "src/common/stats.h"
#include "src/core/service.h"
#include "src/judge/judge.h"
#include "src/serving/cluster.h"
#include "src/workload/query_generator.h"
#include "src/workload/trace.h"

namespace iccache {
namespace {

ServiceConfig FastLearningConfig() {
  ServiceConfig config;
  config.selector.adapt_every_n_requests = 0;  // keep the threshold fixed
  return config;
}

// Topic count scaled down with the pool size so the similarity density
// matches the paper's workloads (section 2.3).
DatasetProfile DenseMsMarco() {
  DatasetProfile profile = GetDatasetProfile(DatasetId::kMsMarco);
  profile.num_topics = 150;
  return profile;
}

class EndToEndFixture : public ::testing::Test {
 protected:
  EndToEndFixture()
      : profile_(DenseMsMarco()),
        gen_(profile_, 101),
        sim_(102),
        embedder_(std::make_shared<HashingEmbedder>()),
        service_(FastLearningConfig(), &catalog_, &sim_, embedder_) {}

  void SeedAndWarm(size_t pool, size_t warmup) {
    for (size_t i = 0; i < pool; ++i) {
      service_.SeedExample(gen_.Next(), 0.0);
    }
    service_.PretrainProxy(800);  // offline proxy bootstrap (section 4.1)
    for (size_t i = 0; i < warmup; ++i) {
      service_.ServeRequest(gen_.Next(), static_cast<double>(i));
    }
  }

  ModelCatalog catalog_;
  DatasetProfile profile_;
  QueryGenerator gen_;
  GenerationSimulator sim_;
  std::shared_ptr<const Embedder> embedder_;
  IcCacheService service_;
};

TEST_F(EndToEndFixture, IcCacheQualityBeatsAlwaysSmall) {
  SeedAndWarm(400, 300);
  RunningStat ic_quality;
  RunningStat small_quality;
  for (int i = 0; i < 300; ++i) {
    const Request req = gen_.Next();
    ic_quality.Add(service_.ServeRequest(req, 1000.0 + i).generation.latent_quality);
    small_quality.Add(sim_.Generate(catalog_.Get("gemma-2-2b"), req, {}).latent_quality);
  }
  EXPECT_GT(ic_quality.mean(), small_quality.mean() + 0.03);
}

TEST_F(EndToEndFixture, IcCacheApproachesLargeModelQuality) {
  SeedAndWarm(400, 300);
  SideBySideStats versus_large;
  PairwiseJudge judge;
  for (int i = 0; i < 200; ++i) {
    const Request req = gen_.Next();
    const double ic = service_.ServeRequest(req, 1000.0 + i).generation.latent_quality;
    const double large = sim_.Generate(catalog_.Get("gemma-2-27b"), req, {}).latent_quality;
    versus_large.Add(judge.Compare(ic, large));
  }
  // Section 6.2: IC-Cache matches large-model quality (win rate near or above
  // parity), while offloading much of the traffic.
  EXPECT_GT(versus_large.win_rate(), 0.42);
}

TEST_F(EndToEndFixture, SubstantialOffloadingAfterWarmup) {
  SeedAndWarm(400, 400);
  int offloaded = 0;
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    offloaded += service_.ServeRequest(gen_.Next(), 2000.0 + i).offloaded ? 1 : 0;
  }
  EXPECT_GT(static_cast<double>(offloaded) / n, 0.3);
}

TEST_F(EndToEndFixture, OverloadRaisesOffloadRatio) {
  SeedAndWarm(400, 300);
  auto offload_ratio_at_load = [&](double load) {
    for (int i = 0; i < 50; ++i) {
      service_.ObserveLoad(load);
    }
    int offloaded = 0;
    for (int i = 0; i < 150; ++i) {
      const ServeOutcome outcome = service_.ServeRequest(gen_.Next(), 3000.0 + i);
      offloaded += outcome.offloaded ? 1 : 0;
    }
    return offloaded / 150.0;
  };
  const double calm = offload_ratio_at_load(0.1);
  const double overloaded = offload_ratio_at_load(3.0);
  EXPECT_GE(overloaded, calm);
  EXPECT_GT(overloaded, 0.8);
}

TEST_F(EndToEndFixture, ServiceDrivesClusterWithLowerLatencyThanAlwaysLarge) {
  // Miniature Figure 12(c): replay a bursty trace through (a) IC-Cache
  // routing over both pools and (b) always-large; compare mean E2E latency.
  SeedAndWarm(300, 300);

  TraceConfig trace_config;
  trace_config.kind = TraceKind::kDiurnalBursty;
  trace_config.mean_rps = 2.5;
  trace_config.duration_s = 240.0;
  trace_config.seed = 1234;
  ArrivalTrace trace(trace_config);
  const std::vector<double> arrivals = trace.GenerateArrivals();

  auto build_cluster = [&](ClusterSim& cluster) {
    cluster.AddPool(catalog_.Get("gemma-2-27b"), 1);
    cluster.AddPool(catalog_.Get("gemma-2-2b"), 1);
  };

  // (a) IC-Cache policy.
  ClusterSim ic_cluster;
  build_cluster(ic_cluster);
  uint64_t rid = 1;
  for (double t : arrivals) {
    ic_cluster.AdvanceTo(t);
    Request req = gen_.Next();
    req.arrival_time = t;
    service_.ObserveLoad(ic_cluster.PoolLoad(service_.large_model().name));
    const ServeOutcome outcome = service_.ServeRequest(req, t);
    ServingRequest serving;
    serving.id = rid++;
    serving.arrival_time = t;
    serving.prompt_tokens = outcome.generation.prompt_tokens;
    serving.output_tokens = outcome.generation.output_tokens;
    ASSERT_TRUE(ic_cluster.Submit(outcome.generation.model_name, serving).ok());
  }
  ic_cluster.RunUntilIdle();

  // (b) Always-large baseline on the same arrivals.
  ClusterSim large_cluster;
  build_cluster(large_cluster);
  QueryGenerator gen2(profile_, 101);
  rid = 1;
  for (double t : arrivals) {
    large_cluster.AdvanceTo(t);
    Request req = gen2.Next();
    ServingRequest serving;
    serving.id = rid++;
    serving.arrival_time = t;
    serving.prompt_tokens = req.input_tokens;
    serving.output_tokens = req.target_output_tokens;
    ASSERT_TRUE(large_cluster.Submit("gemma-2-27b", serving).ok());
  }
  large_cluster.RunUntilIdle();

  PercentileTracker ic_latency;
  for (const auto& record : ic_cluster.completions()) {
    ic_latency.Add(record.E2eLatency());
  }
  PercentileTracker large_latency;
  for (const auto& record : large_cluster.completions()) {
    large_latency.Add(record.E2eLatency());
  }
  ASSERT_EQ(ic_latency.count(), arrivals.size());
  ASSERT_EQ(large_latency.count(), arrivals.size());
  // Headline claim shape (section 6.2): latency reduction of at least ~25%.
  EXPECT_LT(ic_latency.mean(), large_latency.mean() * 0.75);
}

TEST_F(EndToEndFixture, CacheKeepsGrowingAndMaintenanceBoundsIt) {
  ServiceConfig config = FastLearningConfig();
  config.cache.capacity_bytes = 64 * 1024;
  IcCacheService bounded(config, &catalog_, &sim_, embedder_);
  QueryGenerator gen(profile_, 105);
  for (int i = 0; i < 200; ++i) {
    bounded.SeedExample(gen.Next(), 0.0);
  }
  for (int i = 0; i < 300; ++i) {
    bounded.ServeRequest(gen.Next(), static_cast<double>(i));
  }
  bounded.RunMaintenance(7200.0);
  EXPECT_LE(bounded.cache().used_bytes(), config.cache.capacity_bytes);
}

TEST_F(EndToEndFixture, DifficultRequestsPreferLargeModel) {
  SeedAndWarm(400, 600);
  int hard_total = 0;
  int hard_offloaded = 0;
  int easy_total = 0;
  int easy_offloaded = 0;
  for (int i = 0; i < 800; ++i) {
    const Request req = gen_.Next();
    const bool offloaded = service_.ServeRequest(req, 5000.0 + i).offloaded;
    if (req.difficulty > 0.55) {
      ++hard_total;
      hard_offloaded += offloaded ? 1 : 0;
    } else if (req.difficulty < 0.25) {
      ++easy_total;
      easy_offloaded += offloaded ? 1 : 0;
    }
  }
  ASSERT_GT(hard_total, 20);
  ASSERT_GT(easy_total, 20);
  const double hard_rate = static_cast<double>(hard_offloaded) / hard_total;
  const double easy_rate = static_cast<double>(easy_offloaded) / easy_total;
  // The router should offload easy traffic at least as readily as hard
  // traffic (quality-aware routing, section 4.2).
  EXPECT_GE(easy_rate + 0.05, hard_rate);
}

}  // namespace
}  // namespace iccache
