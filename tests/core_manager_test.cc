#include "src/core/manager.h"

#include <memory>

#include <gtest/gtest.h>

#include "src/core/example_cache.h"
#include "src/workload/query_generator.h"

namespace iccache {
namespace {

class ManagerFixture : public ::testing::Test {
 protected:
  ManagerFixture()
      : gen_(GetDatasetProfile(DatasetId::kNaturalQuestions), 81),
        cache_(std::make_shared<HashingEmbedder>()),
        sim_(82),
        manager_(&cache_, &sim_, catalog_.Get("gemma-2-27b")) {}

  GenerationResult FakeGeneration(double quality, int tokens = 120) {
    GenerationResult result;
    result.latent_quality = quality;
    result.output_tokens = tokens;
    return result;
  }

  ModelCatalog catalog_;
  QueryGenerator gen_;
  ExampleCache cache_;
  GenerationSimulator sim_;
  ExampleManager manager_;
};

TEST_F(ManagerFixture, AdmitsLargeModelResponses) {
  const uint64_t id =
      manager_.MaybeAdmit(gen_.Next(), FakeGeneration(0.4), 0.785, /*from_large_model=*/true, 0.0);
  EXPECT_NE(id, 0u);
  EXPECT_EQ(cache_.size(), 1u);
}

TEST_F(ManagerFixture, RejectsLowQualitySmallModelResponses) {
  const uint64_t id = manager_.MaybeAdmit(gen_.Next(), FakeGeneration(0.4), 0.6,
                                          /*from_large_model=*/false, 0.0);
  EXPECT_EQ(id, 0u);
  EXPECT_EQ(cache_.size(), 0u);
}

TEST_F(ManagerFixture, AdmitsHighQualitySmallModelResponses) {
  const uint64_t id = manager_.MaybeAdmit(gen_.Next(), FakeGeneration(0.9), 0.6,
                                          /*from_large_model=*/false, 0.0);
  EXPECT_NE(id, 0u);
}

TEST_F(ManagerFixture, DeduplicatesNearIdenticalRequests) {
  const Request req = gen_.Next();
  EXPECT_NE(manager_.MaybeAdmit(req, FakeGeneration(0.8), 0.785, true, 0.0), 0u);
  EXPECT_EQ(manager_.MaybeAdmit(req, FakeGeneration(0.8), 0.785, true, 1.0), 0u);
  EXPECT_EQ(cache_.size(), 1u);
}

TEST_F(ManagerFixture, RecordUsageFoldsGainIntoEma) {
  const uint64_t id = manager_.MaybeAdmit(gen_.Next(), FakeGeneration(0.8), 0.785, true, 0.0);
  const double before = cache_.Get(id)->replay_gain_ema;
  // Low-quality outcome at full large-model cost: G = (1-0.2)*1.0 = 0.8.
  manager_.RecordUsage({id}, /*response_quality=*/0.2, /*normalized_model_cost=*/1.0);
  const double after = cache_.Get(id)->replay_gain_ema;
  EXPECT_GT(after, before);
  // High-quality cheap outcome shrinks the EMA back down.
  for (int i = 0; i < 20; ++i) {
    manager_.RecordUsage({id}, 0.95, 0.1);
  }
  EXPECT_LT(cache_.Get(id)->replay_gain_ema, after);
}

TEST_F(ManagerFixture, RecordUsageIgnoresUnknownIds) {
  manager_.RecordUsage({12345}, 0.5, 1.0);
  SUCCEED();
}

TEST_F(ManagerFixture, ReplayImprovesLowQualityHotExamples) {
  // A frequently accessed, low-quality example must be replayed and improved.
  const Request req = gen_.Next();
  const uint64_t id = cache_.Put(req, "r", 0.2, 0.785, 100, 0.0);
  Example* example = cache_.GetMutable(id);
  example->replay_gain_ema = 0.9;
  example->access_count = 40;
  const double before = example->response_quality;

  const ReplayReport report = manager_.RunReplayPass();
  EXPECT_EQ(report.candidates, 1u);
  EXPECT_EQ(report.replayed, 1u);
  EXPECT_GE(cache_.Get(id)->response_quality, before);
  EXPECT_EQ(cache_.Get(id)->replay_count, 1);
}

TEST_F(ManagerFixture, ReplayRespectsLifetimeCap) {
  const uint64_t id = cache_.Put(gen_.Next(), "r", 0.2, 0.785, 100, 0.0);
  Example* example = cache_.GetMutable(id);
  example->access_count = 40;
  for (int pass = 0; pass < 10; ++pass) {
    example = cache_.GetMutable(id);
    example->replay_gain_ema = 0.9;  // keep it attractive
    manager_.RunReplayPass();
  }
  EXPECT_LE(cache_.Get(id)->replay_count, manager_.config().max_replays_per_example);
}

TEST_F(ManagerFixture, ReplayCutoffSkipsColdLowGainExamples) {
  // Cold example with negligible gain: the cost-aware cutoff must skip it.
  const uint64_t id = cache_.Put(gen_.Next(), "r", 0.9, 0.785, 100, 0.0);
  Example* example = cache_.GetMutable(id);
  example->replay_gain_ema = 0.01;
  example->access_count = 0;
  const ReplayReport report = manager_.RunReplayPass();
  EXPECT_EQ(report.replayed, 0u);
  EXPECT_EQ(cache_.Get(id)->replay_count, 0);
}

TEST_F(ManagerFixture, ReplayOrderedByGainStopsAtCutoff) {
  // Two hot examples above the cutoff, one cold below: exactly two replays.
  for (int i = 0; i < 2; ++i) {
    const uint64_t id = cache_.Put(gen_.Next(), "r", 0.2, 0.785, 100, 0.0);
    Example* example = cache_.GetMutable(id);
    example->replay_gain_ema = 0.8;
    example->access_count = 30;
  }
  const uint64_t cold = cache_.Put(gen_.Next(), "r", 0.9, 0.785, 100, 0.0);
  cache_.GetMutable(cold)->replay_gain_ema = 0.001;
  const ReplayReport report = manager_.RunReplayPass();
  EXPECT_EQ(report.replayed, 2u);
}

TEST_F(ManagerFixture, ReplayBatchBounded) {
  ManagerConfig config;
  config.max_replays_per_pass = 5;
  ExampleManager bounded(&cache_, &sim_, catalog_.Get("gemma-2-27b"), config);
  for (int i = 0; i < 20; ++i) {
    const uint64_t id = cache_.Put(gen_.Next(), "r", 0.2, 0.785, 100, 0.0);
    Example* example = cache_.GetMutable(id);
    example->replay_gain_ema = 0.9;
    example->access_count = 50;
  }
  EXPECT_EQ(bounded.RunReplayPass().replayed, 5u);
}

TEST_F(ManagerFixture, MaintenanceDecaysOnlyAfterInterval) {
  const uint64_t id = cache_.Put(gen_.Next(), "r", 0.5, 0.785, 100, 0.0);
  cache_.RecordOffload(id, 10.0);
  manager_.MaybeRunMaintenance(100.0);  // within the first hour: no decay
  EXPECT_NEAR(cache_.Get(id)->offload_value, 10.0, 1e-9);
  manager_.MaybeRunMaintenance(3700.0);
  EXPECT_NEAR(cache_.Get(id)->offload_value, 9.0, 1e-9);
  // Re-running within the same hour is a no-op.
  manager_.MaybeRunMaintenance(3800.0);
  EXPECT_NEAR(cache_.Get(id)->offload_value, 9.0, 1e-9);
}

TEST_F(ManagerFixture, ReplayUpgradesSourceCapability) {
  const uint64_t id = cache_.Put(gen_.Next(), "r", 0.1, 0.3, 100, 0.0);
  Example* example = cache_.GetMutable(id);
  example->replay_gain_ema = 0.9;
  example->access_count = 40;
  manager_.RunReplayPass();
  // Replay regenerates on the 27B model; an improved response must carry the
  // replay model's capability.
  if (cache_.Get(id)->response_quality > 0.1) {
    EXPECT_NEAR(cache_.Get(id)->source_capability, catalog_.Get("gemma-2-27b").capability, 1e-9);
  }
}

}  // namespace
}  // namespace iccache
