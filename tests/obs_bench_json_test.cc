// Unit coverage for the perf-trajectory gate: BENCH json round trips and the
// CompareBenchRuns tolerance-band semantics tools/bench_compare enforces in
// CI — improvements never fail, regressions beyond the band do, machine-
// dependent metrics gate only under --strict, and a gated baseline metric
// missing from the run is itself a failure.
#include <unistd.h>

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "src/obs/bench_json.h"

namespace iccache {
namespace {

BenchRunRecord MakeRecord() {
  BenchRunRecord record;
  record.bench = "driver_throughput";
  record.AddConfig("requests", "3000");
  record.AddConfig("backend", "hnsw");
  record.AddMetric("requests_per_second", 1200.0, 0.15, +1, /*machine_dependent=*/true);
  record.AddMetric("p99_latency_s", 0.250, 0.10, -1);
  record.AddMetric("stage0_hit_rate", 0.36, 0.10, +1);
  record.AddMetric("anomaly_count", 0.0, 0.0, -1);
  record.AddMetric("tail_exemplars", 113.0, 0.0, 0);  // informational
  return record;
}

TEST(BenchJsonTest, JsonRoundTripPreservesEverything) {
  const BenchRunRecord record = MakeRecord();
  const StatusOr<BenchRunRecord> parsed = ParseBenchRun(BenchRunJson(record));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().schema, "iccache-bench/1");
  EXPECT_EQ(parsed.value().bench, "driver_throughput");
  ASSERT_EQ(parsed.value().config.size(), record.config.size());
  EXPECT_EQ(parsed.value().config[0].first, "requests");
  EXPECT_EQ(parsed.value().config[0].second, "3000");
  ASSERT_EQ(parsed.value().metrics.size(), record.metrics.size());
  for (size_t i = 0; i < record.metrics.size(); ++i) {
    EXPECT_EQ(parsed.value().metrics[i].first, record.metrics[i].first);
    EXPECT_DOUBLE_EQ(parsed.value().metrics[i].second.value,
                     record.metrics[i].second.value);
    EXPECT_DOUBLE_EQ(parsed.value().metrics[i].second.tolerance,
                     record.metrics[i].second.tolerance);
    EXPECT_EQ(parsed.value().metrics[i].second.direction,
              record.metrics[i].second.direction);
    EXPECT_EQ(parsed.value().metrics[i].second.machine_dependent,
              record.metrics[i].second.machine_dependent);
  }
}

TEST(BenchJsonTest, FileWriteReadRoundTrip) {
  const std::string path =
      "/tmp/iccache_bench_json_test_" + std::to_string(::getpid()) + ".json";
  ASSERT_TRUE(WriteBenchRun(path, MakeRecord()).ok());
  const StatusOr<BenchRunRecord> read = ReadBenchRun(path);
  std::remove(path.c_str());
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read.value().bench, "driver_throughput");
  ASSERT_NE(read.value().Find("p99_latency_s"), nullptr);
  EXPECT_DOUBLE_EQ(read.value().Find("p99_latency_s")->value, 0.250);
}

TEST(BenchJsonTest, ParserRejectsMalformedRecords) {
  EXPECT_FALSE(ParseBenchRun("not json").ok());
  EXPECT_FALSE(ParseBenchRun("[]").ok());
  EXPECT_FALSE(
      ParseBenchRun("{\"schema\": \"iccache-bench/1\", \"metrics\": 3}").ok());
  // A foreign schema string parses (the record carries it verbatim) — the
  // version check happens at compare time, where it fails the gate.
  const StatusOr<BenchRunRecord> foreign =
      ParseBenchRun("{\"schema\": \"other/9\", \"metrics\": {}}");
  ASSERT_TRUE(foreign.ok());
  EXPECT_FALSE(CompareBenchRuns(MakeRecord(), foreign.value(), false).ok());
}

TEST(BenchCompareTest, IdenticalRunPasses) {
  const BenchRunRecord record = MakeRecord();
  const BenchCompareResult result = CompareBenchRuns(record, record, /*strict=*/true);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.regressions(), 0u);
  EXPECT_TRUE(result.missing_metrics.empty());
}

TEST(BenchCompareTest, ImprovementsNeverFail) {
  const BenchRunRecord baseline = MakeRecord();
  BenchRunRecord run = MakeRecord();
  run.Find("stage0_hit_rate")->value = 0.80;   // higher-is-better, way up
  run.Find("p99_latency_s")->value = 0.050;    // lower-is-better, way down
  EXPECT_TRUE(CompareBenchRuns(baseline, run, /*strict=*/false).ok());
}

TEST(BenchCompareTest, RegressionBeyondTheBandFails) {
  const BenchRunRecord baseline = MakeRecord();
  BenchRunRecord run = MakeRecord();
  // 10% band: -9% squeaks by, -20% fails.
  run.Find("stage0_hit_rate")->value = 0.36 * 0.91;
  EXPECT_TRUE(CompareBenchRuns(baseline, run, /*strict=*/false).ok());
  run.Find("stage0_hit_rate")->value = 0.36 * 0.80;
  const BenchCompareResult result = CompareBenchRuns(baseline, run, /*strict=*/false);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.regressions(), 1u);
  EXPECT_NE(RenderBenchCompare(result).find("FAIL"), std::string::npos);
}

TEST(BenchCompareTest, LowerIsBetterGatesTheUpperSide) {
  const BenchRunRecord baseline = MakeRecord();
  BenchRunRecord run = MakeRecord();
  run.Find("p99_latency_s")->value = 0.250 * 1.25;  // 25% slower vs 10% band
  EXPECT_FALSE(CompareBenchRuns(baseline, run, /*strict=*/false).ok());
}

TEST(BenchCompareTest, MachineDependentMetricsGateOnlyUnderStrict) {
  const BenchRunRecord baseline = MakeRecord();
  BenchRunRecord run = MakeRecord();
  run.Find("requests_per_second")->value = 600.0;  // halved throughput
  // Default mode: reported but not gated (baseline crosses machines).
  EXPECT_TRUE(CompareBenchRuns(baseline, run, /*strict=*/false).ok());
  // Strict mode (same machine, the ci.sh red path): gated and failing.
  EXPECT_FALSE(CompareBenchRuns(baseline, run, /*strict=*/true).ok());
}

TEST(BenchCompareTest, ZeroBaselineUsesTheToleranceAsAbsoluteAllowance) {
  BenchRunRecord baseline = MakeRecord();
  baseline.Find("anomaly_count")->tolerance = 0.5;
  BenchRunRecord run = MakeRecord();
  run.Find("anomaly_count")->value = 0.4;  // within the absolute allowance
  EXPECT_TRUE(CompareBenchRuns(baseline, run, /*strict=*/false).ok());
  run.Find("anomaly_count")->value = 2.0;  // a clean run grew anomalies
  EXPECT_FALSE(CompareBenchRuns(baseline, run, /*strict=*/false).ok());
}

TEST(BenchCompareTest, MissingGatedMetricFailsMissingInfoMetricDoesNot) {
  const BenchRunRecord baseline = MakeRecord();
  BenchRunRecord no_gated = MakeRecord();
  no_gated.metrics.erase(no_gated.metrics.begin() + 1);  // drop p99_latency_s
  const BenchCompareResult result =
      CompareBenchRuns(baseline, no_gated, /*strict=*/false);
  EXPECT_FALSE(result.ok());
  ASSERT_EQ(result.missing_metrics.size(), 1u);
  EXPECT_EQ(result.missing_metrics[0], "p99_latency_s");

  BenchRunRecord no_info = MakeRecord();
  no_info.metrics.pop_back();  // drop the informational tail_exemplars
  EXPECT_TRUE(CompareBenchRuns(baseline, no_info, /*strict=*/false).ok());
}

TEST(BenchCompareTest, ExtraRunMetricsAreInformational) {
  const BenchRunRecord baseline = MakeRecord();
  BenchRunRecord run = MakeRecord();
  run.AddMetric("brand_new_metric", 1.0, 0.1, +1);
  const BenchCompareResult result = CompareBenchRuns(baseline, run, /*strict=*/false);
  EXPECT_TRUE(result.ok());
  ASSERT_EQ(result.new_metrics.size(), 1u);
  EXPECT_EQ(result.new_metrics[0], "brand_new_metric");
}

TEST(BenchCompareTest, SchemaAndBenchMismatchesFail) {
  const BenchRunRecord baseline = MakeRecord();
  BenchRunRecord wrong_schema = MakeRecord();
  wrong_schema.schema = "iccache-bench/2";
  EXPECT_FALSE(CompareBenchRuns(baseline, wrong_schema, /*strict=*/false).ok());

  BenchRunRecord wrong_bench = MakeRecord();
  wrong_bench.bench = "retrieval_scaling";
  EXPECT_FALSE(CompareBenchRuns(baseline, wrong_bench, /*strict=*/false).ok());
}

TEST(BenchCompareTest, DoctoredThroughputDropMatchesTheCiRedPath) {
  // The exact scenario ci.sh exercises with bench_compare --scale: a run
  // whose requests_per_second was scaled by 0.8 must fail strict comparison
  // against its own original as baseline.
  const BenchRunRecord baseline = MakeRecord();
  BenchRunRecord doctored = MakeRecord();
  doctored.Find("requests_per_second")->value *= 0.8;
  EXPECT_TRUE(CompareBenchRuns(baseline, doctored, /*strict=*/false).ok());
  const BenchCompareResult strict = CompareBenchRuns(baseline, doctored, /*strict=*/true);
  EXPECT_FALSE(strict.ok());
  EXPECT_EQ(strict.regressions(), 1u);
}

}  // namespace
}  // namespace iccache
