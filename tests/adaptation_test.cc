// Section 8 behaviours: adaptation to query-distribution shift and to model
// updates, plus multi-model routing ("when multiple models are available, the
// request router can select the most appropriate model").
#include <memory>

#include <gtest/gtest.h>

#include "src/common/mathutil.h"
#include "src/common/stats.h"
#include "src/core/router.h"
#include "src/core/service.h"
#include "src/workload/query_generator.h"

namespace iccache {
namespace {

std::vector<SelectedExample> FakeExamples(size_t n, double utility) {
  std::vector<SelectedExample> examples;
  for (size_t i = 0; i < n; ++i) {
    SelectedExample ex;
    ex.example_id = i + 1;
    ex.similarity = 0.9;
    ex.predicted_utility = utility;
    examples.push_back(ex);
  }
  return examples;
}

Request MakeRequest(uint64_t id, double difficulty) {
  Request req;
  req.id = id;
  req.difficulty = difficulty;
  req.input_tokens = 64;
  req.target_output_tokens = 128;
  return req;
}

TEST(ModelUpdateAdaptationTest, RouterShiftsTrafficAfterSmallModelUpgrade) {
  // Phase 1: the small arm is weak -> traffic goes large. Phase 2 (model
  // upgrade): the small arm's rewards jump; the router must shift traffic
  // without retraining (section 8, "Handling Model Updates").
  RouterArmSpec small_arm{"small", 0.1, true};
  RouterArmSpec large_arm{"large", 1.0, false};
  RequestRouter router({small_arm, large_arm});
  Rng rng(1);

  auto run_phase = [&](double small_reward, int rounds) {
    int offloads = 0;
    for (int t = 0; t < rounds; ++t) {
      const Request req = MakeRequest(static_cast<uint64_t>(t), rng.Uniform());
      const RouteDecision decision = router.Route(req, FakeExamples(3, 0.7));
      const double reward = decision.uses_examples ? small_reward : 0.85;
      router.UpdateReward(decision, reward + rng.Normal(0.0, 0.03));
      offloads += decision.uses_examples ? 1 : 0;
    }
    return offloads / static_cast<double>(rounds);
  };

  const double before = run_phase(/*small_reward=*/0.35, 1200);
  EXPECT_LT(before, 0.4);  // weak small model mostly avoided
  // Upgrade: the small model now matches the large one.
  const double after = run_phase(/*small_reward=*/0.88, 1500);
  EXPECT_GT(after, before + 0.2);  // traffic shifted toward the cheap arm
}

TEST(DistributionShiftTest, ExampleDecayRetiresStaleTopics) {
  // Section 8, "Handling Query Distribution Shift": hourly decay plus
  // knapsack eviction replaces examples for topics that stopped arriving.
  ModelCatalog catalog;
  GenerationSimulator sim(2);
  auto embedder = std::make_shared<HashingEmbedder>();
  ServiceConfig config;
  config.cache.capacity_bytes = 96 * 1024;
  IcCacheService service(config, &catalog, &sim, embedder);

  DatasetProfile era1 = GetDatasetProfile(DatasetId::kLmsysChat);
  era1.num_topics = 100;
  QueryGenerator gen1(era1, 3);
  for (int i = 0; i < 300; ++i) {
    service.SeedExample(gen1.Next(), 0.0);
  }
  service.PretrainProxy(300);
  for (int i = 0; i < 300; ++i) {
    service.ServeRequest(gen1.Next(), static_cast<double>(i));
  }
  const size_t era1_examples = service.cache().size();
  ASSERT_GT(era1_examples, 0u);

  // Era 2: a different dataset (new trending topics). Serve + maintain for
  // several "hours": era-1 values decay, era-2 admissions displace them.
  DatasetProfile era2 = GetDatasetProfile(DatasetId::kMsMarco);
  era2.num_topics = 100;
  QueryGenerator gen2(era2, 4);
  for (int hour = 1; hour <= 6; ++hour) {
    for (int i = 0; i < 200; ++i) {
      service.ServeRequest(gen2.Next(), hour * 3600.0 + i);
    }
    service.RunMaintenance(hour * 3600.0 + 1000.0);
  }

  size_t era2_count = 0;
  for (uint64_t id : service.cache().AllIds()) {
    if (service.cache().Get(id)->request.dataset == DatasetId::kMsMarco) {
      ++era2_count;
    }
  }
  // Fresh-era examples must have entered the (bounded) cache at scale.
  EXPECT_GT(era2_count, 25u);
  EXPECT_LE(service.cache().used_bytes(), config.cache.capacity_bytes);
}

TEST(MultiModelRoutingTest, ThreeArmRouterUsesMidModelForMidDifficulty) {
  // Section 8, "Performance and Quality Tradeoff": with more than two models
  // the router finds intermediate sweet spots. Synthetic world: small wins
  // easy, mid wins medium, large wins hard.
  RouterArmSpec small_arm{"small", 0.08, true};
  RouterArmSpec mid_arm{"mid", 0.35, true};
  RouterArmSpec large_arm{"large", 1.0, false};
  RouterConfig config;
  config.exploration_epsilon = 0.1;  // three arms need a bit more exploration
  RequestRouter router({small_arm, mid_arm, large_arm}, config);
  Rng rng(5);

  auto true_reward = [](const std::string& model, double difficulty) {
    if (model == "small") {
      return 0.95 - 1.1 * difficulty;
    }
    if (model == "mid") {
      return 0.92 - 0.42 * difficulty;
    }
    return 0.80 - 0.08 * difficulty;
  };

  for (int t = 0; t < 6000; ++t) {
    const Request req = MakeRequest(static_cast<uint64_t>(t), rng.Uniform());
    const RouteDecision decision = router.Route(req, FakeExamples(3, 0.7));
    const double reward =
        Clamp(true_reward(decision.model_name, req.difficulty) + rng.Normal(0.0, 0.04), 0.0, 1.0);
    router.UpdateReward(decision, reward);
  }

  // Count routed arms per difficulty band.
  int mid_hits_mid_band = 0;
  int small_hits_easy_band = 0;
  int cheap_hits_easy_band = 0;  // small or mid
  const int probes = 300;
  for (int i = 0; i < probes; ++i) {
    const RouteDecision easy = router.Route(MakeRequest(100000 + i, 0.05), FakeExamples(3, 0.7));
    small_hits_easy_band += easy.model_name == "small" ? 1 : 0;
    cheap_hits_easy_band += easy.model_name != "large" ? 1 : 0;
    router.UpdateReward(easy, true_reward(easy.model_name, 0.05));
    const RouteDecision mid = router.Route(MakeRequest(200000 + i, 0.5), FakeExamples(3, 0.7));
    mid_hits_mid_band += mid.model_name == "mid" ? 1 : 0;
    router.UpdateReward(mid, true_reward(mid.model_name, 0.5));
  }
  // On easy traffic the small arm's cost-adjusted reward leads the mid arm by
  // only ~0.03, so the posterior keeps both cheap arms in play; together they
  // must dominate, with small holding a substantial share.
  EXPECT_GT(cheap_hits_easy_band, (3 * probes) / 4);
  EXPECT_GT(small_hits_easy_band, probes / 4);
  // At difficulty 0.5 the mid model (0.71, cost-adjusted 0.668) beats both
  // small (0.40) and large (0.76, cost-adjusted 0.64); require mid to take a
  // meaningful share, demonstrating a three-way policy rather than binary.
  EXPECT_GT(mid_hits_mid_band, probes / 5);
}

TEST(ProxyRefreshTest, MaintenanceKeepsProxyCurrentAfterPoolChange) {
  // The asynchronous proxy refresh inside RunMaintenance must keep training
  // signal flowing as the cache contents change.
  ModelCatalog catalog;
  GenerationSimulator sim(6);
  auto embedder = std::make_shared<HashingEmbedder>();
  IcCacheService service(ServiceConfig{}, &catalog, &sim, embedder);
  DatasetProfile profile = GetDatasetProfile(DatasetId::kAlpaca);
  profile.num_topics = 100;
  QueryGenerator gen(profile, 7);
  for (int i = 0; i < 200; ++i) {
    service.SeedExample(gen.Next(), 0.0);
  }
  const size_t updates_before = service.proxy().updates();
  service.RunMaintenance(3700.0);
  EXPECT_GT(service.proxy().updates(), updates_before);
}

}  // namespace
}  // namespace iccache
