#include "src/common/stats.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace iccache {
namespace {

TEST(RunningStatTest, MatchesDirectComputation) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 10.0};
  RunningStat stat;
  for (double x : xs) {
    stat.Add(x);
  }
  EXPECT_EQ(stat.count(), 5u);
  EXPECT_NEAR(stat.mean(), 4.0, 1e-12);
  double var = 0.0;
  for (double x : xs) {
    var += (x - 4.0) * (x - 4.0);
  }
  var /= xs.size();
  EXPECT_NEAR(stat.variance(), var, 1e-12);
  EXPECT_NEAR(stat.stddev(), std::sqrt(var), 1e-12);
  EXPECT_EQ(stat.min(), 1.0);
  EXPECT_EQ(stat.max(), 10.0);
  EXPECT_NEAR(stat.sum(), 20.0, 1e-12);
}

TEST(RunningStatTest, EmptyAndSingle) {
  RunningStat stat;
  EXPECT_EQ(stat.count(), 0u);
  EXPECT_EQ(stat.variance(), 0.0);
  EXPECT_EQ(stat.min(), 0.0);
  stat.Add(7.0);
  EXPECT_EQ(stat.mean(), 7.0);
  EXPECT_EQ(stat.variance(), 0.0);
}

TEST(RunningStatTest, ResetClears) {
  RunningStat stat;
  stat.Add(1.0);
  stat.Reset();
  EXPECT_EQ(stat.count(), 0u);
  EXPECT_EQ(stat.mean(), 0.0);
}

TEST(RunningStatTest, NumericallyStableForLargeOffsets) {
  RunningStat stat;
  for (int i = 0; i < 1000; ++i) {
    stat.Add(1e9 + (i % 2));
  }
  EXPECT_NEAR(stat.variance(), 0.25, 1e-6);
}

TEST(EmaTest, FirstSampleInitializes) {
  Ema ema(0.1);
  EXPECT_FALSE(ema.initialized());
  ema.Add(10.0);
  EXPECT_TRUE(ema.initialized());
  EXPECT_EQ(ema.value(), 10.0);
}

TEST(EmaTest, ConvergesTowardConstantInput) {
  Ema ema(0.2);
  ema.Add(0.0);
  for (int i = 0; i < 100; ++i) {
    ema.Add(5.0);
  }
  EXPECT_NEAR(ema.value(), 5.0, 1e-6);
}

TEST(EmaTest, SingleStepBlend) {
  Ema ema(0.25);
  ema.Add(0.0);
  ema.Add(8.0);
  EXPECT_NEAR(ema.value(), 2.0, 1e-12);
}

TEST(EmaTest, DecayScalesValue) {
  Ema ema(0.5);
  ema.Add(10.0);
  ema.Decay(0.9);
  EXPECT_NEAR(ema.value(), 9.0, 1e-12);
}

TEST(EmaTest, ResetClearsState) {
  Ema ema(0.5);
  ema.Add(3.0);
  ema.Reset();
  EXPECT_FALSE(ema.initialized());
  EXPECT_EQ(ema.value(), 0.0);
}

TEST(PercentileTrackerTest, ExactOrderStatistics) {
  PercentileTracker tracker;
  for (int i = 1; i <= 100; ++i) {
    tracker.Add(static_cast<double>(i));
  }
  EXPECT_EQ(tracker.count(), 100u);
  EXPECT_NEAR(tracker.Percentile(0), 1.0, 1e-12);
  EXPECT_NEAR(tracker.Percentile(100), 100.0, 1e-12);
  EXPECT_NEAR(tracker.Percentile(50), 50.5, 1e-12);
  EXPECT_NEAR(tracker.Percentile(99), 99.01, 0.05);
  EXPECT_NEAR(tracker.mean(), 50.5, 1e-12);
}

TEST(PercentileTrackerTest, UnsortedInsertOrder) {
  PercentileTracker tracker;
  for (double x : {5.0, 1.0, 3.0, 2.0, 4.0}) {
    tracker.Add(x);
  }
  EXPECT_NEAR(tracker.Percentile(50), 3.0, 1e-12);
}

TEST(PercentileTrackerTest, EmptyReturnsZero) {
  PercentileTracker tracker;
  EXPECT_EQ(tracker.Percentile(50), 0.0);
  EXPECT_EQ(tracker.mean(), 0.0);
}

TEST(PercentileTrackerTest, AddAfterQueryStillCorrect) {
  PercentileTracker tracker;
  tracker.Add(1.0);
  tracker.Add(2.0);
  EXPECT_NEAR(tracker.Percentile(100), 2.0, 1e-12);
  tracker.Add(10.0);
  EXPECT_NEAR(tracker.Percentile(100), 10.0, 1e-12);
}

TEST(HistogramTest, BinsAndDensity) {
  Histogram hist(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) {
    hist.Add(static_cast<double>(i) + 0.5);
  }
  EXPECT_EQ(hist.count(), 10u);
  for (size_t b = 0; b < 10; ++b) {
    EXPECT_NEAR(hist.Density(b), 0.1, 1e-12);
    EXPECT_NEAR(hist.BinCenter(b), static_cast<double>(b) + 0.5, 1e-12);
  }
}

TEST(HistogramTest, OutOfRangeClamps) {
  Histogram hist(0.0, 1.0, 4);
  hist.Add(-5.0);
  hist.Add(5.0);
  EXPECT_EQ(hist.bins()[0], 1u);
  EXPECT_EQ(hist.bins()[3], 1u);
}

TEST(HistogramTest, ToStringHasOneRowPerBin) {
  Histogram hist(0.0, 1.0, 3);
  hist.Add(0.5);
  const std::string rendered = hist.ToString();
  EXPECT_EQ(std::count(rendered.begin(), rendered.end(), '\n'), 3);
}

TEST(EmpiricalCdfTest, StepFunctionValues) {
  EmpiricalCdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(cdf.At(0.5), 0.0);
  EXPECT_EQ(cdf.At(1.0), 0.25);
  EXPECT_EQ(cdf.At(2.5), 0.5);
  EXPECT_EQ(cdf.At(10.0), 1.0);
}

TEST(EmpiricalCdfTest, QuantileInterpolates) {
  EmpiricalCdf cdf({0.0, 10.0});
  EXPECT_NEAR(cdf.Quantile(0.0), 0.0, 1e-12);
  EXPECT_NEAR(cdf.Quantile(0.5), 5.0, 1e-12);
  EXPECT_NEAR(cdf.Quantile(1.0), 10.0, 1e-12);
}

TEST(EmpiricalCdfTest, EmptyInput) {
  EmpiricalCdf cdf({});
  EXPECT_EQ(cdf.At(1.0), 0.0);
  EXPECT_EQ(cdf.Quantile(0.5), 0.0);
}

// Property: PercentileTracker::Percentile agrees with EmpiricalCdf::Quantile
// on random data.
class PercentileAgreementSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PercentileAgreementSweep, TrackerMatchesCdf) {
  Rng rng(GetParam());
  PercentileTracker tracker;
  std::vector<double> samples;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.Normal(0.0, 3.0);
    tracker.Add(x);
    samples.push_back(x);
  }
  EmpiricalCdf cdf(samples);
  for (double q : {0.01, 0.25, 0.5, 0.9, 0.99}) {
    EXPECT_NEAR(tracker.Percentile(q * 100.0), cdf.Quantile(q), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileAgreementSweep,
                         ::testing::Values(3ull, 7ull, 11ull, 13ull));

TEST(LatencyHistogramTest, EmptyReturnsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.Percentile(50.0), 0.0);
}

TEST(LatencyHistogramTest, BucketBoundaries) {
  LatencyHistogram h(/*lo=*/1.0, /*growth=*/2.0, /*num_buckets=*/4);
  // Buckets: [1,2) [2,4) [4,8) [8,16); edges are half-open on the right.
  EXPECT_DOUBLE_EQ(h.BucketLowerEdge(0), 1.0);
  EXPECT_DOUBLE_EQ(h.BucketUpperEdge(3), 16.0);
  h.Add(1.0);   // lowest representable value -> bucket 0
  h.Add(1.99);  // still bucket 0
  h.Add(2.0);   // exactly on an edge -> bucket 1
  h.Add(7.99);  // bucket 2
  h.Add(8.0);   // bucket 3
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.underflow_count(), 0u);
  EXPECT_EQ(h.overflow_count(), 0u);
  EXPECT_EQ(h.count(), 5u);
}

TEST(LatencyHistogramTest, UnderflowAndOverflowKeepExactExtremes) {
  LatencyHistogram h(/*lo=*/1.0, /*growth=*/2.0, /*num_buckets=*/4);
  h.Add(0.25);   // below lo -> underflow
  h.Add(100.0);  // at/past top edge (16) -> overflow
  EXPECT_EQ(h.underflow_count(), 1u);
  EXPECT_EQ(h.overflow_count(), 1u);
  EXPECT_EQ(h.count(), 2u);
  // Ranks resolving to the underflow/overflow buckets answer with the exact
  // tracked min/max, not a bucket midpoint.
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 0.25);
  EXPECT_DOUBLE_EQ(h.Percentile(99.0), 100.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.25);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
}

TEST(LatencyHistogramTest, PercentileErrorBoundHolds) {
  // The documented contract: in-range relative error <= sqrt(growth) - 1.
  LatencyHistogram h;  // defaults: lo=1e-6, growth=1.10
  Rng rng(0x9157);
  PercentileTracker exact;
  for (int i = 0; i < 4000; ++i) {
    const double x = std::exp(rng.Normal(-3.0, 1.5));  // log-normal latencies
    h.Add(x);
    exact.Add(x);
  }
  const double bound = std::sqrt(1.10) - 1.0;
  for (double p : {10.0, 50.0, 90.0, 99.0}) {
    const double estimate = h.Percentile(p);
    const double truth = exact.Percentile(p);
    EXPECT_LE(std::abs(estimate - truth) / truth, bound + 0.01)
        << "p=" << p << " estimate=" << estimate << " truth=" << truth;
  }
}

TEST(LatencyHistogramTest, PercentileMonotoneInP) {
  LatencyHistogram h;
  Rng rng(42);
  for (int i = 0; i < 1000; ++i) {
    h.Add(std::exp(rng.Normal(-2.0, 2.0)));
  }
  double previous = 0.0;
  for (double p = 0.0; p <= 100.0; p += 2.5) {
    const double value = h.Percentile(p);
    EXPECT_GE(value, previous) << "p=" << p;
    previous = value;
  }
}

TEST(LatencyHistogramTest, MergeSumsStateAndRejectsGeometryMismatch) {
  LatencyHistogram a(1.0, 2.0, 4);
  LatencyHistogram b(1.0, 2.0, 4);
  a.Add(1.5);
  a.Add(100.0);
  b.Add(3.0);
  b.Add(0.5);
  ASSERT_TRUE(a.Merge(b));
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.bucket_count(0), 1u);
  EXPECT_EQ(a.bucket_count(1), 1u);
  EXPECT_EQ(a.underflow_count(), 1u);
  EXPECT_EQ(a.overflow_count(), 1u);
  EXPECT_DOUBLE_EQ(a.min(), 0.5);
  EXPECT_DOUBLE_EQ(a.max(), 100.0);
  EXPECT_DOUBLE_EQ(a.sum(), 105.0);

  LatencyHistogram mismatched(1.0, 4.0, 4);
  mismatched.Add(2.0);
  const size_t before = a.count();
  EXPECT_FALSE(a.Merge(mismatched));
  EXPECT_EQ(a.count(), before);  // left untouched on mismatch
}

TEST(LatencyHistogramTest, ResetClears) {
  LatencyHistogram h(1.0, 2.0, 4);
  h.Add(0.5);
  h.Add(3.0);
  h.Add(50.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.underflow_count(), 0u);
  EXPECT_EQ(h.overflow_count(), 0u);
  EXPECT_EQ(h.Percentile(50.0), 0.0);
  h.Add(2.5);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
}

}  // namespace
}  // namespace iccache
