#include "src/common/knapsack.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace iccache {
namespace {

TEST(KnapsackExactTest, ClassicInstance) {
  // Items: (w=10,v=60) (w=20,v=100) (w=30,v=120); capacity 50 -> take 2 + 3.
  const std::vector<KnapsackItem> items = {{10, 60.0}, {20, 100.0}, {30, 120.0}};
  const KnapsackSolution solution = SolveKnapsackExact(items, 50);
  EXPECT_TRUE(solution.exact);
  EXPECT_NEAR(solution.total_value, 220.0, 1e-9);
  EXPECT_EQ(solution.total_weight, 50);
  EXPECT_EQ(solution.selected, (std::vector<size_t>{1, 2}));
}

TEST(KnapsackExactTest, ZeroCapacityTakesOnlyWeightless) {
  const std::vector<KnapsackItem> items = {{0, 5.0}, {1, 100.0}};
  const KnapsackSolution solution = SolveKnapsackExact(items, 0);
  EXPECT_NEAR(solution.total_value, 5.0, 1e-9);
  EXPECT_EQ(solution.selected, (std::vector<size_t>{0}));
}

TEST(KnapsackExactTest, NegativeValueNeverSelected) {
  const std::vector<KnapsackItem> items = {{1, -5.0}, {1, 3.0}};
  const KnapsackSolution solution = SolveKnapsackExact(items, 10);
  EXPECT_EQ(solution.selected, (std::vector<size_t>{1}));
}

TEST(KnapsackExactTest, EmptyItems) {
  const KnapsackSolution solution = SolveKnapsackExact({}, 100);
  EXPECT_TRUE(solution.selected.empty());
  EXPECT_EQ(solution.total_value, 0.0);
}

TEST(KnapsackExactTest, AllItemsFitWhenCapacityLarge) {
  const std::vector<KnapsackItem> items = {{5, 1.0}, {5, 2.0}, {5, 3.0}};
  const KnapsackSolution solution = SolveKnapsackExact(items, 1000);
  EXPECT_EQ(solution.selected.size(), 3u);
}

TEST(KnapsackGreedyTest, PrefersValueDensity) {
  // Density order: item1 (10/5=2) > item0 (12/10=1.2); capacity 10 fits only
  // one of them by weight 5 + nothing else -> greedy picks item1.
  const std::vector<KnapsackItem> items = {{10, 12.0}, {5, 10.0}};
  const KnapsackSolution solution = SolveKnapsackGreedy(items, 10);
  EXPECT_FALSE(solution.exact);
  EXPECT_EQ(solution.selected, (std::vector<size_t>{1}));
}

TEST(KnapsackGreedyTest, CapacityRespected) {
  Rng rng(99);
  std::vector<KnapsackItem> items;
  for (int i = 0; i < 200; ++i) {
    items.push_back({static_cast<int64_t>(rng.UniformInt(1, 20)), rng.Uniform(0.0, 10.0)});
  }
  const KnapsackSolution solution = SolveKnapsackGreedy(items, 100);
  EXPECT_LE(solution.total_weight, 100);
}

TEST(KnapsackDispatchTest, SmallProblemUsesExact) {
  const std::vector<KnapsackItem> items = {{1, 1.0}, {2, 2.0}};
  EXPECT_TRUE(SolveKnapsack(items, 10).exact);
}

TEST(KnapsackDispatchTest, HugeProblemFallsBackToGreedy) {
  std::vector<KnapsackItem> items(1000, KnapsackItem{1000000, 1.0});
  EXPECT_FALSE(SolveKnapsack(items, 1000000000, /*max_dp_work=*/1000).exact);
}

// Property: on random instances the exact DP dominates greedy, and both
// respect capacity.
class KnapsackRandomSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KnapsackRandomSweep, ExactDominatesGreedy) {
  Rng rng(GetParam());
  std::vector<KnapsackItem> items;
  const int n = 2 + static_cast<int>(rng.UniformInt(20));
  for (int i = 0; i < n; ++i) {
    items.push_back({static_cast<int64_t>(rng.UniformInt(1, 30)), rng.Uniform(0.0, 20.0)});
  }
  const int64_t capacity = static_cast<int64_t>(rng.UniformInt(10, 200));
  const KnapsackSolution exact = SolveKnapsackExact(items, capacity);
  const KnapsackSolution greedy = SolveKnapsackGreedy(items, capacity);
  EXPECT_LE(exact.total_weight, capacity);
  EXPECT_LE(greedy.total_weight, capacity);
  EXPECT_GE(exact.total_value, greedy.total_value - 1e-9);

  // Reported value must match the recomputed sum over selected items.
  double recomputed = 0.0;
  for (size_t idx : exact.selected) {
    recomputed += items[idx].value;
  }
  EXPECT_NEAR(recomputed, exact.total_value, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Instances, KnapsackRandomSweep,
                         ::testing::Values(1ull, 2ull, 3ull, 5ull, 8ull, 13ull, 21ull, 34ull));

}  // namespace
}  // namespace iccache
