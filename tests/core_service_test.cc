#include "src/core/service.h"

#include <memory>

#include <gtest/gtest.h>

#include "src/core/client.h"
#include "src/core/dp_synthesis.h"
#include "src/workload/query_generator.h"

namespace iccache {
namespace {

// Test workloads use a topic count scaled down with the pool size, keeping
// the paper's similarity density (>70% of requests have a close neighbour).
DatasetProfile DenseProfile(DatasetId id, size_t num_topics = 120) {
  DatasetProfile profile = GetDatasetProfile(id);
  profile.num_topics = num_topics;
  return profile;
}

class ServiceFixture : public ::testing::Test {
 protected:
  ServiceFixture()
      : gen_(DenseProfile(DatasetId::kMsMarco), 91),
        sim_(92),
        embedder_(std::make_shared<HashingEmbedder>()),
        service_(ServiceConfig{}, &catalog_, &sim_, embedder_) {}

  void SeedPool(size_t count) {
    for (size_t i = 0; i < count; ++i) {
      service_.SeedExample(gen_.Next(), 0.0);
    }
  }

  ModelCatalog catalog_;
  QueryGenerator gen_;
  GenerationSimulator sim_;
  std::shared_ptr<const Embedder> embedder_;
  IcCacheService service_;
};

TEST_F(ServiceFixture, SeedExamplePopulatesCache) {
  SeedPool(10);
  EXPECT_EQ(service_.cache().size(), 10u);
  for (uint64_t id : service_.cache().AllIds()) {
    const Example* example = service_.cache().Get(id);
    EXPECT_NEAR(example->source_capability, service_.large_model().capability, 1e-9);
    EXPECT_GT(example->response_quality, 0.0);
  }
}

TEST_F(ServiceFixture, ServeProducesCompleteOutcome) {
  SeedPool(50);
  const ServeOutcome outcome = service_.ServeRequest(gen_.Next(), 1.0);
  EXPECT_FALSE(outcome.generation.model_name.empty());
  EXPECT_GT(outcome.generation.latent_quality, 0.0);
  EXPECT_GT(outcome.generation.e2e_latency_s, 0.0);
  EXPECT_GT(outcome.overhead_latency_s, 0.0);
  EXPECT_GE(outcome.observed_quality, 0.0);
  EXPECT_LE(outcome.observed_quality, 1.0);
}

TEST_F(ServiceFixture, OffloadedRequestsUseExamples) {
  SeedPool(400);
  bool saw_offload = false;
  for (int i = 0; i < 300; ++i) {
    const ServeOutcome outcome = service_.ServeRequest(gen_.Next(), static_cast<double>(i));
    if (outcome.offloaded) {
      saw_offload = true;
      EXPECT_EQ(outcome.generation.model_name, service_.small_model().name);
    } else {
      EXPECT_EQ(outcome.generation.model_name, service_.large_model().name);
      EXPECT_TRUE(outcome.examples_used.empty());
    }
  }
  EXPECT_TRUE(saw_offload);
}

TEST_F(ServiceFixture, MetricsTrackRequestFlow) {
  SeedPool(50);
  for (int i = 0; i < 30; ++i) {
    service_.ServeRequest(gen_.Next(), static_cast<double>(i));
  }
  EXPECT_EQ(service_.metrics().Get("requests_total"), 30.0);
  EXPECT_GE(service_.metrics().Get("requests_offloaded"), 0.0);
  EXPECT_LE(service_.metrics().Get("requests_offloaded"), 30.0);
  EXPECT_GT(service_.metrics().Get("latency_sum_s"), 0.0);
}

TEST_F(ServiceFixture, SelectorFailureBypassesExamples) {
  SeedPool(100);
  service_.set_selector_failed(true);
  for (int i = 0; i < 20; ++i) {
    const ServeOutcome outcome = service_.ServeRequest(gen_.Next(), static_cast<double>(i));
    EXPECT_TRUE(outcome.examples_used.empty());
  }
  EXPECT_GT(service_.metrics().Get("selector_bypassed"), 0.0);
}

TEST_F(ServiceFixture, RouterFailureFallsBackToLargeBackend) {
  SeedPool(100);
  service_.set_router_failed(true);
  for (int i = 0; i < 20; ++i) {
    const ServeOutcome outcome = service_.ServeRequest(gen_.Next(), static_cast<double>(i));
    EXPECT_FALSE(outcome.offloaded);
    EXPECT_EQ(outcome.generation.model_name, service_.large_model().name);
  }
  EXPECT_GT(service_.metrics().Get("router_bypassed"), 0.0);
}

TEST_F(ServiceFixture, FailureRecoveryRestoresOffloading) {
  SeedPool(100);
  service_.set_router_failed(true);
  service_.ServeRequest(gen_.Next(), 0.0);
  service_.set_router_failed(false);
  bool saw_offload = false;
  for (int i = 0; i < 50; ++i) {
    saw_offload |= service_.ServeRequest(gen_.Next(), static_cast<double>(i)).offloaded;
  }
  EXPECT_TRUE(saw_offload);
}

TEST_F(ServiceFixture, OnlineAdmissionGrowsCache) {
  SeedPool(20);
  const size_t before = service_.cache().size();
  for (int i = 0; i < 50; ++i) {
    service_.ServeRequest(gen_.Next(), static_cast<double>(i));
  }
  EXPECT_GT(service_.cache().size(), before);
}

TEST_F(ServiceFixture, MaintenanceRunsReplayAndDecay) {
  SeedPool(50);
  for (int i = 0; i < 50; ++i) {
    service_.ServeRequest(gen_.Next(), static_cast<double>(i));
  }
  service_.RunMaintenance(3700.0);
  EXPECT_GE(service_.metrics().Get("replay_examined"), 0.0);
}

TEST_F(ServiceFixture, OverheadChargedOnlyWhenComponentsRun) {
  SeedPool(50);
  const ServeOutcome with_components = service_.ServeRequest(gen_.Next(), 0.0);
  const double full_overhead = service_.config().selector_stage1_latency_s +
                               service_.config().selector_stage2_latency_s +
                               service_.config().router_latency_s;
  EXPECT_NEAR(with_components.overhead_latency_s, full_overhead, 1e-9);

  service_.set_selector_failed(true);
  service_.set_router_failed(true);
  const ServeOutcome bypassed = service_.ServeRequest(gen_.Next(), 1.0);
  EXPECT_EQ(bypassed.overhead_latency_s, 0.0);
}

TEST_F(ServiceFixture, LoadObservationReachesRouter) {
  service_.ObserveLoad(0.9);
  EXPECT_NEAR(service_.router().load_ema(), 0.9, 1e-9);
}

TEST(IcCacheClientTest, GenerateAndUpdateCacheFlow) {
  ModelCatalog catalog;
  GenerationSimulator sim(93);
  auto embedder = std::make_shared<HashingEmbedder>();
  IcCacheService service(ServiceConfig{}, &catalog, &sim, embedder);
  QueryGenerator gen(GetDatasetProfile(DatasetId::kAlpaca), 94);

  IcCacheClient client(&service);
  const Request request = gen.Next();
  const GenerationResult response = client.Generate(request);
  EXPECT_GT(response.latent_quality, 0.0);

  const size_t before = service.cache().size();
  Request another = gen.Next();
  client.UpdateCache(another, response);
  EXPECT_EQ(service.cache().size(), before + 1);
  client.Stop();
}

TEST(IcCacheClientTest, BatchGenerateReturnsPerRequestResults) {
  ModelCatalog catalog;
  GenerationSimulator sim(95);
  auto embedder = std::make_shared<HashingEmbedder>();
  IcCacheService service(ServiceConfig{}, &catalog, &sim, embedder);
  QueryGenerator gen(GetDatasetProfile(DatasetId::kAlpaca), 96);

  IcCacheClient client(&service);
  const std::vector<Request> requests = gen.Generate(5);
  const auto responses = client.Generate(requests);
  ASSERT_EQ(responses.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(responses[i].request_id, requests[i].id);
  }
}

TEST(DpSynthesisTest, CloneMatchesSourceSizeWithDegradedContent) {
  ModelCatalog catalog;
  GenerationSimulator sim(97);
  auto embedder = std::make_shared<HashingEmbedder>();
  ExampleCache source(embedder);
  QueryGenerator gen(GetDatasetProfile(DatasetId::kLmsysChat), 98);
  for (int i = 0; i < 100; ++i) {
    source.Put(gen.Next(), "r", 0.85, 0.785, 100, 0.0);
  }

  ExampleCacheConfig out_config;
  out_config.admission_mode = CacheAdmissionMode::kAllowAll;
  ExampleCache synthetic(embedder, out_config);
  const DpSynthesisReport report = SynthesizeDpCache(source, &synthetic);

  EXPECT_EQ(report.source_examples, 100u);
  EXPECT_EQ(report.synthesized, 100u);
  EXPECT_EQ(synthetic.size(), 100u);
  EXPECT_GT(report.token_keep_probability, 0.5);
  EXPECT_LT(report.token_keep_probability, 1.0);
  EXPECT_NEAR(report.epsilon_spent, DpSynthesisConfig{}.epsilon, 1e-9);

  // Synthetic responses are (weakly) lower quality than originals.
  double source_quality = 0.0;
  double synth_quality = 0.0;
  for (uint64_t id : source.AllIds()) {
    source_quality += source.Get(id)->response_quality;
  }
  for (uint64_t id : synthetic.AllIds()) {
    synth_quality += synthetic.Get(id)->response_quality;
  }
  EXPECT_LT(synth_quality, source_quality);
}

TEST(DpSynthesisTest, LowerEpsilonReplacesMoreTokens) {
  DpSynthesisConfig strict;
  strict.epsilon = 1.0;
  DpSynthesisConfig loose;
  loose.epsilon = 12.0;
  ModelCatalog catalog;
  auto embedder = std::make_shared<HashingEmbedder>();
  ExampleCache source(embedder);
  QueryGenerator gen(GetDatasetProfile(DatasetId::kLmsysChat), 99);
  for (int i = 0; i < 20; ++i) {
    source.Put(gen.Next(), "r", 0.85, 0.785, 100, 0.0);
  }
  ExampleCacheConfig out_config;
  out_config.admission_mode = CacheAdmissionMode::kAllowAll;
  ExampleCache out_strict(embedder, out_config);
  ExampleCache out_loose(embedder, out_config);
  const DpSynthesisReport strict_report = SynthesizeDpCache(source, &out_strict, strict);
  const DpSynthesisReport loose_report = SynthesizeDpCache(source, &out_loose, loose);
  EXPECT_LT(strict_report.token_keep_probability, loose_report.token_keep_probability);
}

}  // namespace
}  // namespace iccache
