#include "src/llm/generation.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/stats.h"
#include "src/llm/model_profile.h"
#include "src/workload/query_generator.h"

namespace iccache {
namespace {

Request MakeRequest(double difficulty, TaskType task = TaskType::kConversation) {
  Request req;
  req.id = 1;
  req.difficulty = difficulty;
  req.task = task;
  req.input_tokens = 64;
  req.target_output_tokens = 128;
  return req;
}

ExampleView MakeExample(double relevance, double quality, double source_capability,
                        int tokens = 200) {
  ExampleView ex;
  ex.relevance = relevance;
  ex.quality = quality;
  ex.source_capability = source_capability;
  ex.tokens = tokens;
  return ex;
}

TEST(ModelCatalogTest, AllPairsResolvable) {
  ModelCatalog catalog;
  for (const auto& pair : {ModelCatalog::GeminiPair(), ModelCatalog::GemmaPair(),
                           ModelCatalog::DeepSeekPair(), ModelCatalog::QwenPair(),
                           ModelCatalog::PhiPair()}) {
    EXPECT_TRUE(catalog.Contains(pair.first)) << pair.first;
    EXPECT_TRUE(catalog.Contains(pair.second)) << pair.second;
    // Large side must be more capable and more expensive.
    const ModelProfile& large = catalog.Get(pair.first);
    const ModelProfile& small = catalog.Get(pair.second);
    EXPECT_GT(large.capability, small.capability);
    EXPECT_GT(large.cost_per_1k_tokens, small.cost_per_1k_tokens);
    EXPECT_GE(large.gpus_required, small.gpus_required);
  }
}

TEST(ModelCatalogTest, Figure1LatencyOrdering) {
  // Figure 1: the large model of each pair has higher TBT; DeepSeek-R1's TTFT
  // dwarfs Qwen-7B's.
  ModelCatalog catalog;
  EXPECT_GT(catalog.Get("gemini-1.5-pro").Tbt(), catalog.Get("gemini-1.5-flash").Tbt());
  EXPECT_GT(catalog.Get("deepseek-r1").ttft_base_s, catalog.Get("qwen2.5-7b").ttft_base_s * 50);
  EXPECT_NEAR(catalog.Get("deepseek-r1").Tbt(), 0.1214, 1e-4);
  EXPECT_NEAR(catalog.Get("gemini-1.5-flash").Tbt(), 0.005, 1e-6);
}

TEST(ModelCatalogTest, DeepSeekFootprintMatchesPaper) {
  ModelCatalog catalog;
  EXPECT_EQ(catalog.Get("deepseek-r1").gpus_required, 16);
  EXPECT_EQ(catalog.Get("qwen2.5-7b").gpus_required, 1);
}

TEST(GenerationTest, LargeModelBeatsSmallOnAverage) {
  ModelCatalog catalog;
  GenerationSimulator sim(1);
  QueryGenerator gen(GetDatasetProfile(DatasetId::kLmsysChat), 2);
  RunningStat large_quality;
  RunningStat small_quality;
  for (int i = 0; i < 500; ++i) {
    const Request req = gen.Next();
    large_quality.Add(sim.Generate(catalog.Get("gemma-2-27b"), req, {}).latent_quality);
    small_quality.Add(sim.Generate(catalog.Get("gemma-2-2b"), req, {}).latent_quality);
  }
  EXPECT_GT(large_quality.mean(), small_quality.mean() + 0.05);
}

TEST(GenerationTest, QualityDecreasesWithDifficulty) {
  ModelCatalog catalog;
  GenerationSimulator sim(3);
  RunningStat easy;
  RunningStat hard;
  for (int i = 0; i < 300; ++i) {
    easy.Add(sim.Generate(catalog.Get("gemma-2-2b"), MakeRequest(0.2), {}).latent_quality);
    hard.Add(sim.Generate(catalog.Get("gemma-2-2b"), MakeRequest(0.9), {}).latent_quality);
  }
  EXPECT_GT(easy.mean(), hard.mean() + 0.2);
}

TEST(GenerationTest, RelevantExamplesImproveSmallModel) {
  // Figure 4(a): well-selected in-context examples lift quality.
  ModelCatalog catalog;
  GenerationSimulator sim(4);
  const std::vector<ExampleView> good = {
      MakeExample(0.95, 0.9, 0.785), MakeExample(0.9, 0.85, 0.785),
      MakeExample(0.85, 0.88, 0.785)};
  RunningStat with_examples;
  RunningStat without;
  for (int i = 0; i < 400; ++i) {
    const Request req = MakeRequest(0.6);
    with_examples.Add(sim.Generate(catalog.Get("gemma-2-2b"), req, good).latent_quality);
    without.Add(sim.Generate(catalog.Get("gemma-2-2b"), req, {}).latent_quality);
  }
  EXPECT_GT(with_examples.mean(), without.mean() + 0.10);
}

TEST(GenerationTest, RandomExamplesHurt) {
  // Figure 4(a): random (irrelevant) examples regress quality below baseline.
  ModelCatalog catalog;
  GenerationSimulator sim(5);
  const std::vector<ExampleView> random_examples = {
      MakeExample(0.05, 0.9, 0.785), MakeExample(0.08, 0.8, 0.785),
      MakeExample(0.03, 0.85, 0.785), MakeExample(0.06, 0.9, 0.785),
      MakeExample(0.04, 0.88, 0.785)};
  RunningStat with_random;
  RunningStat without;
  for (int i = 0; i < 600; ++i) {
    const Request req = MakeRequest(0.55);
    with_random.Add(
        sim.Generate(catalog.Get("gemma-2-2b"), req, random_examples).latent_quality);
    without.Add(sim.Generate(catalog.Get("gemma-2-2b"), req, {}).latent_quality);
  }
  EXPECT_LT(with_random.mean(), without.mean());
}

TEST(GenerationTest, AugmentedSmallModelCanExceedLarge) {
  // Section 6.3: with high-quality same-intent examples the small model can
  // outperform its larger counterpart on suitable requests.
  ModelCatalog catalog;
  GenerationSimulator sim(6);
  const std::vector<ExampleView> strong = {
      MakeExample(0.97, 0.95, 0.785), MakeExample(0.95, 0.92, 0.785),
      MakeExample(0.93, 0.9, 0.785)};
  RunningStat small_ic;
  RunningStat large_plain;
  for (int i = 0; i < 600; ++i) {
    const Request req = MakeRequest(0.5);
    small_ic.Add(sim.Generate(catalog.Get("gemma-2-2b"), req, strong).latent_quality);
    large_plain.Add(sim.Generate(catalog.Get("gemma-2-27b"), req, {}).latent_quality);
  }
  EXPECT_GT(small_ic.mean(), large_plain.mean() - 0.03);
}

TEST(GenerationTest, ExampleBenefitSaturates) {
  // Diminishing returns: 8 examples add little over 4 (section 4.1).
  ModelCatalog catalog;
  GenerationSimulator sim(7);
  auto run = [&](size_t count) {
    std::vector<ExampleView> examples(count, MakeExample(0.9, 0.85, 0.785));
    RunningStat stat;
    for (int i = 0; i < 400; ++i) {
      stat.Add(sim.Generate(catalog.Get("gemma-2-2b"), MakeRequest(0.6), examples).latent_quality);
    }
    return stat.mean();
  };
  const double q0 = run(0);
  const double q2 = run(2);
  const double q4 = run(4);
  const double q8 = run(8);
  EXPECT_GT(q2, q0);
  EXPECT_GT(q4, q2);
  EXPECT_LT(q8 - q4, (q2 - q0) * 0.8);  // marginal gain shrinks
}

TEST(GenerationTest, PrefillLatencyGrowsWithExamples) {
  // Figure 4(b): prepending examples raises TTFT but stays below large-model
  // TTFT.
  ModelCatalog catalog;
  GenerationSimulator sim(8);
  const Request req = MakeRequest(0.5);
  const std::vector<ExampleView> examples(5, MakeExample(0.9, 0.85, 0.82, 400));
  const GenerationResult plain = sim.Generate(catalog.Get("qwen2.5-3b"), req, {});
  const GenerationResult augmented = sim.Generate(catalog.Get("qwen2.5-3b"), req, examples);
  const GenerationResult large = sim.Generate(catalog.Get("qwen2.5-32b"), req, {});
  EXPECT_GT(augmented.ttft_s, plain.ttft_s);
  EXPECT_LT(augmented.ttft_s, large.ttft_s);
  EXPECT_EQ(augmented.prompt_tokens, req.input_tokens + 5 * 400);
}

TEST(GenerationTest, ExamplesShortenDecodes) {
  // Figure 18: IC-augmented decodes are slightly shorter on average.
  ModelCatalog catalog;
  GenerationSimulator sim(9);
  RunningStat with_ic;
  RunningStat without;
  const std::vector<ExampleView> examples = {MakeExample(0.9, 0.9, 0.785)};
  for (int i = 0; i < 500; ++i) {
    const Request req = MakeRequest(0.4);
    with_ic.Add(sim.Generate(catalog.Get("gemma-2-2b"), req, examples).output_tokens);
    without.Add(sim.Generate(catalog.Get("gemma-2-2b"), req, {}).output_tokens);
  }
  EXPECT_LT(with_ic.mean(), without.mean());
}

TEST(GenerationTest, SamplingVarianceEnablesBestOfN) {
  // Section 4.3: repeated generation has enough variance that best-of-3
  // clearly beats a single draw.
  ModelCatalog catalog;
  GenerationSimulator sim(10);
  RunningStat single;
  RunningStat best_of_3;
  for (int i = 0; i < 400; ++i) {
    const Request req = MakeRequest(0.55);
    const double q1 = sim.Generate(catalog.Get("gemma-2-27b"), req, {}).latent_quality;
    double best = q1;
    for (int d = 0; d < 2; ++d) {
      best = std::max(best, sim.Generate(catalog.Get("gemma-2-27b"), req, {}).latent_quality);
    }
    single.Add(q1);
    best_of_3.Add(best);
  }
  EXPECT_GT(best_of_3.mean(), single.mean() + 0.02);
}

TEST(GenerationTest, AccuracyStricterForCodeAndMath) {
  ModelCatalog catalog;
  GenerationSimulator sim(11);
  int code_correct = 0;
  int chat_correct = 0;
  const int n = 800;
  for (int i = 0; i < n; ++i) {
    code_correct +=
        sim.Generate(catalog.Get("qwen2.5-3b"), MakeRequest(0.5, TaskType::kCodeGeneration), {})
            .correct;
    chat_correct +=
        sim.Generate(catalog.Get("qwen2.5-3b"), MakeRequest(0.5, TaskType::kConversation), {})
            .correct;
  }
  EXPECT_LT(code_correct, chat_correct);
}

TEST(GenerationTest, ExtraCapabilityBoostRaisesQuality) {
  ModelCatalog catalog;
  GenerationSimulator sim(12);
  RunningStat boosted;
  RunningStat plain;
  for (int i = 0; i < 400; ++i) {
    const Request req = MakeRequest(0.6);
    boosted.Add(sim.Generate(catalog.Get("gemma-2-2b"), req, {}, 0.08).latent_quality);
    plain.Add(sim.Generate(catalog.Get("gemma-2-2b"), req, {}, 0.0).latent_quality);
  }
  EXPECT_GT(boosted.mean(), plain.mean());
}

TEST(ReusedResponseQualityTest, ParaphraseKeepsQualityMismatchLosesIt) {
  GenerationSimulator sim(13);
  RunningStat exact;
  RunningStat topical;
  RunningStat unrelated;
  for (int i = 0; i < 300; ++i) {
    exact.Add(sim.ReusedResponseQuality(0.9, 0.95));
    topical.Add(sim.ReusedResponseQuality(0.9, 0.65));
    unrelated.Add(sim.ReusedResponseQuality(0.9, 0.1));
  }
  EXPECT_GT(exact.mean(), 0.7);
  EXPECT_LT(topical.mean(), 0.45);
  EXPECT_LT(unrelated.mean(), 0.1);
}

TEST(StructuralRelevanceTest, OrderingByLatentMatch) {
  Rng rng(14);
  Request a;
  a.dataset = DatasetId::kMsMarco;
  a.topic_id = 5;
  a.intent_id = 1;
  Request same_intent = a;
  Request same_topic = a;
  same_topic.intent_id = 2;
  Request other_topic = a;
  other_topic.topic_id = 9;
  Request other_dataset = a;
  other_dataset.dataset = DatasetId::kAlpaca;

  RunningStat s_intent;
  RunningStat s_topic;
  RunningStat s_other;
  RunningStat s_dataset;
  for (int i = 0; i < 200; ++i) {
    s_intent.Add(StructuralRelevance(a, same_intent, rng));
    s_topic.Add(StructuralRelevance(a, same_topic, rng));
    s_other.Add(StructuralRelevance(a, other_topic, rng));
    s_dataset.Add(StructuralRelevance(a, other_dataset, rng));
  }
  EXPECT_GT(s_intent.mean(), s_topic.mean());
  EXPECT_GT(s_topic.mean(), s_other.mean());
  EXPECT_GT(s_other.mean(), s_dataset.mean());
  EXPECT_GT(s_intent.mean(), 0.9);
}

class ModelPairSweep
    : public ::testing::TestWithParam<std::pair<std::string, std::string>> {};

TEST_P(ModelPairSweep, IcExamplesNarrowTheQualityGap) {
  // For every paper model pair, augmenting the small model with high-quality
  // examples from the large model must shrink the quality gap.
  ModelCatalog catalog;
  GenerationSimulator sim(15);
  const ModelProfile& large = catalog.Get(GetParam().first);
  const ModelProfile& small = catalog.Get(GetParam().second);
  const std::vector<ExampleView> examples = {
      MakeExample(0.95, 0.9, large.capability), MakeExample(0.9, 0.88, large.capability),
      MakeExample(0.88, 0.85, large.capability)};
  RunningStat gap_plain;
  RunningStat gap_ic;
  for (int i = 0; i < 300; ++i) {
    const Request req = MakeRequest(0.55);
    const double lq = sim.Generate(large, req, {}).latent_quality;
    gap_plain.Add(lq - sim.Generate(small, req, {}).latent_quality);
    gap_ic.Add(lq - sim.Generate(small, req, examples).latent_quality);
  }
  EXPECT_LT(gap_ic.mean(), gap_plain.mean());
}

INSTANTIATE_TEST_SUITE_P(Pairs, ModelPairSweep,
                         ::testing::Values(ModelCatalog::GeminiPair(), ModelCatalog::GemmaPair(),
                                           ModelCatalog::DeepSeekPair(), ModelCatalog::QwenPair(),
                                           ModelCatalog::PhiPair()));

}  // namespace
}  // namespace iccache
