#include "src/index/vector_index.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/mathutil.h"
#include "src/common/rng.h"
#include "src/index/kmeans.h"

namespace iccache {
namespace {

std::vector<float> RandomUnitVector(Rng& rng, size_t dim) {
  std::vector<float> v(dim);
  for (auto& x : v) {
    x = static_cast<float>(rng.Normal());
  }
  NormalizeL2(v);
  return v;
}

TEST(OptimalClusterCountTest, SqrtRule) {
  EXPECT_EQ(OptimalClusterCount(0), 1u);
  EXPECT_EQ(OptimalClusterCount(1), 1u);
  EXPECT_EQ(OptimalClusterCount(100), 10u);
  EXPECT_EQ(OptimalClusterCount(10000), 100u);
  // sqrt(N) minimizes K + N/K: check against neighbours for a sample N.
  const size_t n = 4096;
  const size_t k_opt = OptimalClusterCount(n);
  const auto cost = [n](size_t k) {
    return static_cast<double>(k) + static_cast<double>(n) / static_cast<double>(k);
  };
  EXPECT_LE(cost(k_opt), cost(k_opt - 1) + 1e-9);
  EXPECT_LE(cost(k_opt), cost(k_opt + 1) + 1e-9);
}

TEST(KMeansTest, SeparatesWellSeparatedClusters) {
  Rng rng(1);
  std::vector<std::vector<float>> points;
  // Two tight blobs far apart on the first axis.
  for (int i = 0; i < 50; ++i) {
    points.push_back({static_cast<float>(10.0 + rng.Normal(0.0, 0.1)),
                      static_cast<float>(rng.Normal(0.0, 0.1))});
    points.push_back({static_cast<float>(-10.0 + rng.Normal(0.0, 0.1)),
                      static_cast<float>(rng.Normal(0.0, 0.1))});
  }
  const KMeansResult result = KMeansCluster(points, 2, rng);
  ASSERT_EQ(result.centroids.size(), 2u);
  // Every pair of points in the same blob must share an assignment.
  for (size_t i = 0; i < points.size(); i += 2) {
    EXPECT_EQ(result.assignments[i], result.assignments[0]);
  }
  for (size_t i = 1; i < points.size(); i += 2) {
    EXPECT_EQ(result.assignments[i], result.assignments[1]);
  }
  EXPECT_NE(result.assignments[0], result.assignments[1]);
}

TEST(KMeansTest, InertiaNonIncreasingWithMoreClusters) {
  Rng rng(2);
  std::vector<std::vector<float>> points;
  for (int i = 0; i < 200; ++i) {
    points.push_back(RandomUnitVector(rng, 8));
  }
  Rng rng_a(3);
  Rng rng_b(3);
  const double inertia_2 = KMeansCluster(points, 2, rng_a).inertia;
  const double inertia_16 = KMeansCluster(points, 16, rng_b).inertia;
  EXPECT_LT(inertia_16, inertia_2);
}

TEST(KMeansTest, KClampedToPointCount) {
  Rng rng(4);
  std::vector<std::vector<float>> points = {{1.0f, 0.0f}, {0.0f, 1.0f}};
  const KMeansResult result = KMeansCluster(points, 10, rng);
  EXPECT_EQ(result.centroids.size(), 2u);
}

TEST(KMeansTest, EmptyInput) {
  Rng rng(5);
  const KMeansResult result = KMeansCluster({}, 3, rng);
  EXPECT_TRUE(result.centroids.empty());
  EXPECT_TRUE(result.assignments.empty());
}

TEST(KMeansTest, IdenticalPointsHandled) {
  Rng rng(6);
  std::vector<std::vector<float>> points(20, std::vector<float>{1.0f, 2.0f});
  const KMeansResult result = KMeansCluster(points, 4, rng);
  EXPECT_NEAR(result.inertia, 0.0, 1e-9);
}

TEST(FlatIndexTest, AddSearchRemove) {
  FlatIndex index(4);
  EXPECT_TRUE(index.Add(1, {1.0f, 0.0f, 0.0f, 0.0f}).ok());
  EXPECT_TRUE(index.Add(2, {0.0f, 1.0f, 0.0f, 0.0f}).ok());
  EXPECT_EQ(index.size(), 2u);

  const auto results = index.Search({1.0f, 0.0f, 0.0f, 0.0f}, 1);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].id, 1u);
  EXPECT_NEAR(results[0].score, 1.0, 1e-6);

  EXPECT_TRUE(index.Remove(1));
  EXPECT_FALSE(index.Remove(1));
  EXPECT_EQ(index.size(), 1u);
  EXPECT_EQ(index.Search({1.0f, 0.0f, 0.0f, 0.0f}, 1)[0].id, 2u);
}

TEST(FlatIndexTest, DimensionMismatchRejected) {
  FlatIndex index(4);
  EXPECT_FALSE(index.Add(1, {1.0f}).ok());
}

TEST(FlatIndexTest, OverwriteExistingId) {
  FlatIndex index(2);
  ASSERT_TRUE(index.Add(1, {1.0f, 0.0f}).ok());
  ASSERT_TRUE(index.Add(1, {0.0f, 1.0f}).ok());
  EXPECT_EQ(index.size(), 1u);
  const float* v = index.Find(1);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v[1], 1.0f);
}

TEST(FlatIndexTest, ResultsSortedDescending) {
  FlatIndex index(2);
  index.Add(1, {1.0f, 0.0f});
  index.Add(2, {0.7071f, 0.7071f});
  index.Add(3, {0.0f, 1.0f});
  const auto results = index.Search({1.0f, 0.0f}, 3);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].id, 1u);
  EXPECT_EQ(results[1].id, 2u);
  EXPECT_EQ(results[2].id, 3u);
  EXPECT_GE(results[0].score, results[1].score);
  EXPECT_GE(results[1].score, results[2].score);
}

TEST(FlatIndexTest, KLargerThanSize) {
  FlatIndex index(2);
  index.Add(1, {1.0f, 0.0f});
  EXPECT_EQ(index.Search({1.0f, 0.0f}, 10).size(), 1u);
}

TEST(KMeansIndexTest, StaysFlatBelowClusterThreshold) {
  KMeansIndexConfig config;
  config.dim = 4;
  config.min_points_to_cluster = 64;
  KMeansIndex index(config);
  Rng rng(7);
  for (uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(index.Add(i, RandomUnitVector(rng, 4)).ok());
  }
  EXPECT_FALSE(index.clustered());
  EXPECT_EQ(index.Search(RandomUnitVector(rng, 4), 3).size(), 3u);
}

TEST(KMeansIndexTest, ClustersAtThresholdAndUsesSqrtN) {
  KMeansIndexConfig config;
  config.dim = 8;
  config.min_points_to_cluster = 64;
  KMeansIndex index(config);
  Rng rng(8);
  for (uint64_t i = 0; i < 256; ++i) {
    ASSERT_TRUE(index.Add(i, RandomUnitVector(rng, 8)).ok());
  }
  EXPECT_TRUE(index.clustered());
  // K = sqrt(N) at the last rebuild; the rebuild happens somewhere between 64
  // and 256 points, so K must lie in [8, 16].
  EXPECT_GE(index.num_clusters(), 8u);
  EXPECT_LE(index.num_clusters(), 16u);
  index.Rebuild();
  EXPECT_EQ(index.num_clusters(), 16u);
}

TEST(KMeansIndexTest, RemoveShrinksIndex) {
  KMeansIndexConfig config;
  config.dim = 4;
  KMeansIndex index(config);
  Rng rng(9);
  for (uint64_t i = 0; i < 100; ++i) {
    index.Add(i, RandomUnitVector(rng, 4));
  }
  EXPECT_TRUE(index.Remove(5));
  EXPECT_FALSE(index.Remove(5));
  EXPECT_EQ(index.size(), 99u);
  for (const auto& result : index.Search(RandomUnitVector(rng, 4), 99)) {
    EXPECT_NE(result.id, 5u);
  }
}

TEST(KMeansIndexTest, DimensionMismatchRejected) {
  KMeansIndexConfig config;
  config.dim = 4;
  KMeansIndex index(config);
  EXPECT_FALSE(index.Add(1, {1.0f}).ok());
}

TEST(KMeansIndexTest, RecallAgainstFlatReference) {
  // The clustered index probes nprobe clusters; top-1 recall against exact
  // search should still be high on random unit vectors.
  const size_t dim = 16;
  KMeansIndexConfig config;
  config.dim = dim;
  config.nprobe = 3;
  KMeansIndex approx(config);
  FlatIndex exact(dim);
  Rng rng(10);
  for (uint64_t i = 0; i < 512; ++i) {
    const auto v = RandomUnitVector(rng, dim);
    ASSERT_TRUE(approx.Add(i, v).ok());
    ASSERT_TRUE(exact.Add(i, v).ok());
  }
  approx.Rebuild();

  int hits = 0;
  const int queries = 100;
  for (int q = 0; q < queries; ++q) {
    const auto query = RandomUnitVector(rng, dim);
    const auto approx_results = approx.Search(query, 1);
    const auto exact_results = exact.Search(query, 1);
    ASSERT_FALSE(approx_results.empty());
    ASSERT_FALSE(exact_results.empty());
    if (approx_results[0].id == exact_results[0].id) {
      ++hits;
    }
  }
  EXPECT_GE(hits, 60);  // top-1 recall >= 60% with 3 probes on random data
}

TEST(KMeansIndexTest, NearDuplicateQueryAlwaysFound) {
  // Recall for the common case: querying with (a paraphrase of) a stored
  // vector must find it — this is what stage-1 retrieval needs.
  const size_t dim = 16;
  KMeansIndexConfig config;
  config.dim = dim;
  KMeansIndex index(config);
  Rng rng(11);
  std::vector<std::vector<float>> stored;
  for (uint64_t i = 0; i < 300; ++i) {
    stored.push_back(RandomUnitVector(rng, dim));
    ASSERT_TRUE(index.Add(i, stored.back()).ok());
  }
  index.Rebuild();
  int hits = 0;
  for (uint64_t i = 0; i < 300; ++i) {
    const auto results = index.Search(stored[i], 1);
    if (!results.empty() && results[0].id == i) {
      ++hits;
    }
  }
  EXPECT_GE(hits, 295);  // self-recall is essentially exact
}

class KMeansIndexSizeSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(KMeansIndexSizeSweep, SearchReturnsRequestedK) {
  const size_t n = GetParam();
  KMeansIndexConfig config;
  config.dim = 8;
  KMeansIndex index(config);
  Rng rng(12);
  for (uint64_t i = 0; i < n; ++i) {
    index.Add(i, RandomUnitVector(rng, 8));
  }
  const size_t k = std::min<size_t>(5, n);
  const auto results = index.Search(RandomUnitVector(rng, 8), 5);
  EXPECT_GE(results.size(), k > 0 ? 1u : 0u);
  EXPECT_LE(results.size(), 5u);
  std::set<uint64_t> unique;
  for (const auto& r : results) {
    unique.insert(r.id);
  }
  EXPECT_EQ(unique.size(), results.size());  // no duplicate ids
}

INSTANTIATE_TEST_SUITE_P(Sizes, KMeansIndexSizeSweep,
                         ::testing::Values(0u, 1u, 7u, 63u, 64u, 100u, 333u));

}  // namespace
}  // namespace iccache
