// Property-style invariant sweeps across modules: randomized operation
// sequences and parameter grids asserting the structural invariants the
// system relies on, independent of calibration.
#include <algorithm>
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "src/core/example_cache.h"
#include "src/core/selector.h"
#include "src/core/service.h"
#include "src/serving/cluster.h"
#include "src/workload/query_generator.h"

namespace iccache {
namespace {

// ---------------------------------------------------------------------------
// Cache invariants under randomized op sequences (fuzz-style).

class CacheFuzzSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CacheFuzzSweep, UsedBytesAndIndexStayConsistent) {
  Rng rng(GetParam());
  auto embedder = std::make_shared<HashingEmbedder>();
  ExampleCacheConfig config;
  config.capacity_bytes = 64 * 1024;
  config.high_watermark = 1e12;  // evict only when asked
  ExampleCache cache(embedder, config);
  QueryGenerator gen(GetDatasetProfile(DatasetId::kLmsysChat), GetParam() ^ 0xf);

  std::vector<uint64_t> live;
  for (int op = 0; op < 600; ++op) {
    const double dice = rng.Uniform();
    if (dice < 0.55 || live.empty()) {
      const uint64_t id = cache.Put(gen.Next(), "r", rng.Uniform(), 0.785,
                                    static_cast<int>(rng.UniformInt(20, 400)), op);
      if (id != 0) {
        live.push_back(id);
      }
    } else if (dice < 0.75) {
      const size_t pick = rng.UniformInt(live.size());
      EXPECT_TRUE(cache.Remove(live[pick]));
      live.erase(live.begin() + static_cast<long>(pick));
    } else if (dice < 0.9) {
      cache.RecordOffload(live[rng.UniformInt(live.size())], rng.Uniform());
    } else {
      const auto evicted = cache.EnforceCapacity();
      for (uint64_t id : evicted) {
        live.erase(std::remove(live.begin(), live.end(), id), live.end());
      }
      EXPECT_LE(cache.used_bytes(), config.capacity_bytes);
    }

    // Invariant: size matches the live set; used_bytes equals the sum of
    // live example sizes.
    ASSERT_EQ(cache.size(), live.size());
    int64_t expected_bytes = 0;
    for (uint64_t id : live) {
      const Example* example = cache.Get(id);
      ASSERT_NE(example, nullptr);
      expected_bytes += example->SizeBytes();
    }
    ASSERT_EQ(cache.used_bytes(), expected_bytes);
  }

  // Index consistency: every search result resolves to a live example.
  for (const auto& result : cache.FindSimilar(gen.Next(), 20)) {
    EXPECT_NE(cache.Get(result.id), nullptr);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheFuzzSweep, ::testing::Values(1ull, 2ull, 3ull, 5ull, 8ull));

// ---------------------------------------------------------------------------
// Cluster conservation laws across batch sizes and loads.

struct ClusterParam {
  int max_batch;
  double rps;
  int requests;
};

class ClusterConservationSweep : public ::testing::TestWithParam<ClusterParam> {};

TEST_P(ClusterConservationSweep, EveryRequestCompletesExactlyOnceInCausalOrder) {
  const ClusterParam param = GetParam();
  ModelCatalog catalog;
  ClusterSim cluster;
  ServerConfig server_config;
  server_config.max_batch_size = param.max_batch;
  cluster.AddPool(catalog.Get("gemma-2-2b"), 2, server_config);

  Rng rng(42);
  for (int i = 0; i < param.requests; ++i) {
    ServingRequest req;
    req.id = static_cast<uint64_t>(i + 1);
    req.arrival_time = static_cast<double>(i) / param.rps;
    req.prompt_tokens = static_cast<int>(rng.UniformInt(10, 300));
    req.output_tokens = static_cast<int>(rng.UniformInt(5, 200));
    ASSERT_TRUE(cluster.Submit("gemma-2-2b", req).ok());
  }
  cluster.RunUntilIdle();

  // Conservation: each submitted id completes exactly once.
  std::set<uint64_t> completed;
  for (const CompletionRecord& record : cluster.completions()) {
    EXPECT_TRUE(completed.insert(record.id).second) << "duplicate completion";
    // Causality: arrival <= admission <= first token <= completion.
    EXPECT_LE(record.arrival_time, record.admission_time + 1e-9);
    EXPECT_LE(record.admission_time, record.first_token_time + 1e-9);
    EXPECT_LE(record.first_token_time, record.completion_time + 1e-9);
    EXPECT_GT(record.output_tokens, 0);
  }
  EXPECT_EQ(completed.size(), static_cast<size_t>(param.requests));
  EXPECT_EQ(cluster.PoolInFlight("gemma-2-2b"), 0u);
}

INSTANTIATE_TEST_SUITE_P(Grids, ClusterConservationSweep,
                         ::testing::Values(ClusterParam{1, 5.0, 60}, ClusterParam{4, 5.0, 120},
                                           ClusterParam{16, 20.0, 200},
                                           ClusterParam{16, 1000.0, 300},
                                           ClusterParam{8, 0.5, 30}));

// ---------------------------------------------------------------------------
// Selection invariants across datasets and model pairs.

struct SelectionParam {
  DatasetId dataset;
  const char* small_model;
};

class SelectionInvariantSweep : public ::testing::TestWithParam<SelectionParam> {};

TEST_P(SelectionInvariantSweep, SelectionRespectsStructuralInvariants) {
  const SelectionParam param = GetParam();
  DatasetProfile profile = GetDatasetProfile(param.dataset);
  profile.num_topics = std::max<size_t>(60, profile.num_topics / 20);
  QueryGenerator gen(profile, 0x99);
  auto embedder = std::make_shared<HashingEmbedder>();
  ExampleCache cache(embedder);
  ProxyUtilityModel proxy;
  ExampleSelector selector(&cache, &proxy);
  ModelCatalog catalog;
  const ModelProfile& model = catalog.Get(param.small_model);
  Rng rng(0x9a);
  for (int i = 0; i < 600; ++i) {
    cache.Put(gen.Next(), "r", rng.Uniform(0.3, 1.0), 0.8, 120, 0.0);
  }

  for (int i = 0; i < 40; ++i) {
    const Request req = gen.Next();
    const auto selected = selector.Select(req, model, static_cast<double>(i));
    // Bounded count, unique ids, live ids, utilities above threshold, sorted
    // ascending (best last), similarities above the stage-1 floor.
    EXPECT_LE(selected.size(), selector.config().max_examples);
    std::set<uint64_t> ids;
    for (size_t k = 0; k < selected.size(); ++k) {
      EXPECT_TRUE(ids.insert(selected[k].example_id).second);
      EXPECT_NE(cache.Get(selected[k].example_id), nullptr);
      EXPECT_GE(selected[k].predicted_utility, selector.utility_threshold() - 1e-9);
      EXPECT_GE(selected[k].similarity, selector.config().stage1_min_similarity - 1e-9);
      if (k > 0) {
        EXPECT_LE(selected[k - 1].predicted_utility, selected[k].predicted_utility + 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grids, SelectionInvariantSweep,
    ::testing::Values(SelectionParam{DatasetId::kMsMarco, "gemma-2-2b"},
                      SelectionParam{DatasetId::kLmsysChat, "gemini-1.5-flash"},
                      SelectionParam{DatasetId::kNl2Bash, "qwen2.5-3b"},
                      SelectionParam{DatasetId::kMath500, "phi-3-mini"},
                      SelectionParam{DatasetId::kWmt16, "qwen2.5-7b"}));

// ---------------------------------------------------------------------------
// Service-level invariants across model pairs (the outcome contract).

class ServiceContractSweep
    : public ::testing::TestWithParam<std::pair<std::string, std::string>> {};

TEST_P(ServiceContractSweep, OutcomeContractHolds) {
  ModelCatalog catalog;
  GenerationSimulator sim(0xc0);
  auto embedder = std::make_shared<HashingEmbedder>();
  ServiceConfig config;
  config.large_model = GetParam().first;
  config.small_model = GetParam().second;
  IcCacheService service(config, &catalog, &sim, embedder);
  DatasetProfile profile = GetDatasetProfile(DatasetId::kMsMarco);
  profile.num_topics = 120;
  QueryGenerator gen(profile, 0xc1);
  for (int i = 0; i < 200; ++i) {
    service.SeedExample(gen.Next(), 0.0);
  }
  service.PretrainProxy(200);

  for (int i = 0; i < 120; ++i) {
    const ServeOutcome outcome = service.ServeRequest(gen.Next(), static_cast<double>(i));
    // The serving model matches the offload flag; examples only on offload;
    // quality and latency are well-formed.
    if (outcome.offloaded) {
      EXPECT_EQ(outcome.generation.model_name, GetParam().second);
    } else {
      EXPECT_EQ(outcome.generation.model_name, GetParam().first);
      EXPECT_TRUE(outcome.examples_used.empty());
    }
    EXPECT_GE(outcome.generation.latent_quality, 0.0);
    EXPECT_LE(outcome.generation.latent_quality, 1.0);
    EXPECT_GT(outcome.generation.e2e_latency_s, 0.0);
    EXPECT_GE(outcome.generation.prompt_tokens, 0);
  }
  EXPECT_EQ(service.metrics().Get("requests_total"), 120.0);
}

INSTANTIATE_TEST_SUITE_P(Pairs, ServiceContractSweep,
                         ::testing::Values(ModelCatalog::GemmaPair(), ModelCatalog::GeminiPair(),
                                           ModelCatalog::DeepSeekPair(), ModelCatalog::QwenPair(),
                                           ModelCatalog::PhiPair()));

}  // namespace
}  // namespace iccache
