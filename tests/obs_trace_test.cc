// Unit coverage for the flight-recorder observability layer: ring-buffer
// wrap/drop accounting, span emission through the global recorder, the
// MetricsHub (handles, window series, Prometheus text), and the Chrome
// trace-event JSON writer/parser round trip.
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/export.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace iccache {
namespace {

TraceEvent MakeEvent(uint64_t begin_ns, TraceCategory category = TraceCategory::kEmbed) {
  TraceEvent event;
  event.begin_ns = begin_ns;
  event.end_ns = begin_ns + 10;
  event.category = category;
  return event;
}

TEST(TraceRecorderTest, RingKeepsEventsBelowCapacity) {
  TraceRecorder recorder(/*ring_capacity=*/8);
  for (uint64_t i = 0; i < 5; ++i) {
    recorder.Emit(MakeEvent(i));
  }
  const TraceRecorder::Snapshot snapshot = recorder.TakeSnapshot();
  ASSERT_EQ(snapshot.threads.size(), 1u);
  EXPECT_EQ(snapshot.emitted, 5u);
  EXPECT_EQ(snapshot.dropped, 0u);
  ASSERT_EQ(snapshot.threads[0].events.size(), 5u);
  for (uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(snapshot.threads[0].events[i].begin_ns, i);  // oldest first
  }
}

TEST(TraceRecorderTest, RingWrapOverwritesOldestAndCountsDrops) {
  TraceRecorder recorder(/*ring_capacity=*/4);
  for (uint64_t i = 0; i < 10; ++i) {
    recorder.Emit(MakeEvent(i));
  }
  const TraceRecorder::Snapshot snapshot = recorder.TakeSnapshot();
  ASSERT_EQ(snapshot.threads.size(), 1u);
  EXPECT_EQ(snapshot.emitted, 10u);
  EXPECT_EQ(snapshot.dropped, 6u);  // exactly head - capacity
  ASSERT_EQ(snapshot.threads[0].events.size(), 4u);
  // The survivors are the newest four, oldest first.
  for (uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(snapshot.threads[0].events[i].begin_ns, 6 + i);
  }
  EXPECT_EQ(recorder.total_emitted(), 10u);
  EXPECT_EQ(recorder.total_dropped(), 6u);
}

TEST(TraceRecorderTest, ResetClearsCountsButKeepsRegistrations) {
  TraceRecorder recorder(/*ring_capacity=*/4);
  for (uint64_t i = 0; i < 6; ++i) {
    recorder.Emit(MakeEvent(i));
  }
  recorder.Reset();
  EXPECT_EQ(recorder.total_emitted(), 0u);
  EXPECT_EQ(recorder.total_dropped(), 0u);
  // The thread's cached ring pointer must survive Reset(): emitting again
  // lands in the same (now empty) ring.
  recorder.Emit(MakeEvent(42));
  const TraceRecorder::Snapshot snapshot = recorder.TakeSnapshot();
  ASSERT_EQ(snapshot.threads.size(), 1u);
  ASSERT_EQ(snapshot.threads[0].events.size(), 1u);
  EXPECT_EQ(snapshot.threads[0].events[0].begin_ns, 42u);
}

TEST(TraceSpanTest, DisabledTracingEmitsNothing) {
  ScopedTracing off(false);
  TraceRecorder::Global().Reset();
  {
    TraceSpan span(TraceCategory::kEmbed, /*request_id=*/9);
    EXPECT_FALSE(span.active());
    span.SetArgs(1, 2);
  }
  EXPECT_EQ(TraceRecorder::Global().total_emitted(), 0u);
}

TEST(TraceSpanTest, EnabledSpanRecordsCategoryRequestAndArgs) {
  ScopedTracing on(true);
  TraceRecorder::Global().Reset();
  {
    TraceSpan span(TraceCategory::kStage1Retrieval, /*request_id=*/77, /*lane=*/3);
    EXPECT_TRUE(span.active());
    span.SetArgs(11, 22);
  }
  const TraceRecorder::Snapshot snapshot = TraceRecorder::Global().TakeSnapshot();
  const TraceEvent* found = nullptr;
  for (const auto& thread : snapshot.threads) {
    for (const auto& event : thread.events) {
      if (event.category == TraceCategory::kStage1Retrieval && event.request_id == 77) {
        found = &event;
      }
    }
  }
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->arg0, 11u);
  EXPECT_EQ(found->arg1, 22u);
  EXPECT_EQ(found->lane, 3u);
  EXPECT_GE(found->end_ns, found->begin_ns);
}

TEST(TraceCategoryTest, EveryCategoryHasAUniqueName) {
  std::vector<std::string> names;
  for (size_t i = 0; i < static_cast<size_t>(TraceCategory::kNumCategories); ++i) {
    const std::string name = TraceCategoryName(static_cast<TraceCategory>(i));
    EXPECT_FALSE(name.empty());
    for (const std::string& previous : names) {
      EXPECT_NE(name, previous);
    }
    names.push_back(name);
  }
}

TEST(MetricsHubTest, CounterGaugeHistogramRoundTrip) {
  MetricsHub hub;
  MetricCounter* requests = hub.Counter("requests_total");
  requests->Add(3.0);
  requests->Increment();
  EXPECT_DOUBLE_EQ(hub.Value("requests_total"), 4.0);
  EXPECT_EQ(hub.Counter("requests_total"), requests);  // handles are stable

  hub.Set("pool_bytes", 1234.0);
  EXPECT_DOUBLE_EQ(hub.Value("pool_bytes"), 1234.0);
  EXPECT_DOUBLE_EQ(hub.Value("never_registered"), 0.0);

  hub.Observe("e2e_seconds", 0.25);
  hub.Observe("e2e_seconds", 0.50);
  const LatencyHistogram snapshot = hub.HistogramSnapshot("e2e_seconds");
  EXPECT_EQ(snapshot.count(), 2u);
  EXPECT_DOUBLE_EQ(snapshot.sum(), 0.75);
}

TEST(MetricsHubTest, WindowSeriesIsBoundedDropOldest) {
  MetricsHub hub;
  hub.set_series_capacity(3);
  hub.Counter("ticks_total");
  for (uint64_t window = 0; window < 5; ++window) {
    hub.Add("ticks_total");
    hub.SnapshotWindow(window, static_cast<double>(window), window * 1000);
  }
  const std::vector<MetricsWindowSample> series = hub.series();
  ASSERT_EQ(series.size(), 3u);
  EXPECT_EQ(hub.series_dropped(), 2u);
  EXPECT_EQ(series.front().window, 2u);  // oldest surviving row
  EXPECT_EQ(series.back().window, 4u);
  ASSERT_EQ(series.back().values.size(), 1u);
  EXPECT_EQ(series.back().values[0].first, "ticks_total");
  EXPECT_DOUBLE_EQ(series.back().values[0].second, 5.0);
}

TEST(MetricsHubTest, PrometheusTextExposesAllFamilies) {
  MetricsHub hub;
  hub.Add("requests_total", 7.0);
  hub.Set("pool_bytes", 4096.0);
  hub.Observe("latency_seconds", 0.010);
  hub.Observe("latency_seconds", 0.200);
  const std::string text = hub.PrometheusText();
  EXPECT_NE(text.find("# TYPE iccache_requests_total counter"), std::string::npos);
  EXPECT_NE(text.find("iccache_requests_total 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE iccache_pool_bytes gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE iccache_latency_seconds histogram"), std::string::npos);
  EXPECT_NE(text.find("iccache_latency_seconds_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("iccache_latency_seconds_count 2"), std::string::npos);
  EXPECT_NE(text.find("iccache_latency_seconds_sum"), std::string::npos);
}

TEST(MetricsHubTest, HistogramExemplarsTrackLastRequestPerBucket) {
  MetricsHub hub;
  MetricHistogram* histogram = hub.Histogram("e2e_seconds");
  histogram->Observe(0.010, /*exemplar_id=*/41);
  histogram->Observe(0.010, /*exemplar_id=*/42);  // same bucket: last id wins
  histogram->Observe(5.000, /*exemplar_id=*/77);
  histogram->Observe(0.500);  // no id: bucket counted but no exemplar recorded

  const std::map<int, uint64_t> exemplars = hub.HistogramExemplars("e2e_seconds");
  ASSERT_EQ(exemplars.size(), 2u);
  const LatencyHistogram shape = histogram->snapshot();
  EXPECT_EQ(shape.count(), 4u);
  EXPECT_EQ(exemplars.at(shape.BucketIndex(0.010)), 42u);
  EXPECT_EQ(exemplars.at(shape.BucketIndex(5.000)), 77u);
  EXPECT_TRUE(hub.HistogramExemplars("never_registered").empty());
}

TEST(PrometheusRoundTripTest, ExpositionParsesAndValidates) {
  MetricsHub hub;
  hub.Add("requests_total", 21.0);
  hub.Set("pool_bytes", 4096.0);
  for (const double value : {0.001, 0.010, 0.010, 0.250, 30.0}) {
    hub.Observe("e2e_seconds", value);
  }
  const std::string text = hub.PrometheusText();

  PrometheusSummary summary;
  std::string error;
  ASSERT_TRUE(ParsePrometheusText(text, &summary, &error)) << error;
  ASSERT_TRUE(ValidatePrometheusHistograms(summary, &error)) << error;

  const auto counter = summary.families.find("iccache_requests_total");
  ASSERT_NE(counter, summary.families.end());
  EXPECT_EQ(counter->second.type, "counter");
  EXPECT_DOUBLE_EQ(counter->second.value, 21.0);
  const auto gauge = summary.families.find("iccache_pool_bytes");
  ASSERT_NE(gauge, summary.families.end());
  EXPECT_EQ(gauge->second.type, "gauge");
  EXPECT_DOUBLE_EQ(gauge->second.value, 4096.0);
  const auto histogram = summary.families.find("iccache_e2e_seconds");
  ASSERT_NE(histogram, summary.families.end());
  EXPECT_EQ(histogram->second.type, "histogram");
  EXPECT_TRUE(histogram->second.has_sum);
  EXPECT_TRUE(histogram->second.has_count);
  EXPECT_DOUBLE_EQ(histogram->second.count, 5.0);
  ASSERT_FALSE(histogram->second.buckets.empty());
  // The exposition contract: cumulative counts ending in a +Inf bucket that
  // equals _count (ValidatePrometheusHistograms checked the monotone part).
  EXPECT_TRUE(std::isinf(histogram->second.buckets.back().first));
  EXPECT_DOUBLE_EQ(histogram->second.buckets.back().second, 5.0);
}

TEST(PrometheusRoundTripTest, ParserAndValidatorRejectBrokenExpositions) {
  PrometheusSummary summary;
  std::string error;
  // A sample whose family was never declared with # TYPE.
  EXPECT_FALSE(ParsePrometheusText("iccache_mystery 1\n", &summary, &error));
  EXPECT_FALSE(error.empty());

  // A histogram whose +Inf bucket disagrees with _count must fail
  // validation even though it parses.
  const std::string broken =
      "# TYPE iccache_lat histogram\n"
      "iccache_lat_bucket{le=\"0.1\"} 1\n"
      "iccache_lat_bucket{le=\"+Inf\"} 2\n"
      "iccache_lat_sum 0.3\n"
      "iccache_lat_count 3\n";
  summary = PrometheusSummary();
  ASSERT_TRUE(ParsePrometheusText(broken, &summary, &error)) << error;
  EXPECT_FALSE(ValidatePrometheusHistograms(summary, &error));
  EXPECT_FALSE(error.empty());
}

TEST(ChromeTraceExportTest, JsonRoundTripsThroughTheParser) {
  TraceRecorder recorder(/*ring_capacity=*/16);
  recorder.Emit(MakeEvent(100, TraceCategory::kPrepare));
  recorder.Emit(MakeEvent(200, TraceCategory::kMerge));
  recorder.Emit(MakeEvent(300, TraceCategory::kMerge));

  MetricsWindowSample sample;
  sample.window = 0;
  sample.mono_ns = 500;
  sample.values = {{"pool_bytes", 2048.0}, {"requests_total", 3.0}};

  const std::string json = ChromeTraceJson(recorder.TakeSnapshot(), {sample});
  ChromeTraceSummary summary;
  std::string error;
  ASSERT_TRUE(ParseChromeTrace(json, &summary, &error)) << error;
  EXPECT_EQ(summary.emitted, 3u);
  EXPECT_EQ(summary.dropped, 0u);
  EXPECT_EQ(summary.span_counts["prepare"], 1u);
  EXPECT_EQ(summary.span_counts["merge"], 2u);
  EXPECT_EQ(summary.counter_counts["pool_bytes"], 1u);
  EXPECT_EQ(summary.counter_counts["requests_total"], 1u);
}

TEST(ChromeTraceExportTest, FileWriteReadRoundTrip) {
  TraceRecorder recorder(/*ring_capacity=*/16);
  recorder.Emit(MakeEvent(1, TraceCategory::kPublish));
  const std::string path =
      "/tmp/iccache_obs_trace_test_" + std::to_string(::getpid()) + ".json";
  ASSERT_TRUE(WriteChromeTraceFile(path, recorder.TakeSnapshot(), {}).ok());
  const StatusOr<std::string> contents = ReadTextFile(path);
  std::remove(path.c_str());
  ASSERT_TRUE(contents.ok());
  ChromeTraceSummary summary;
  std::string error;
  ASSERT_TRUE(ParseChromeTrace(contents.value(), &summary, &error)) << error;
  EXPECT_EQ(summary.span_counts["publish"], 1u);
}

TEST(ChromeTraceExportTest, ParserRejectsMalformedJson) {
  ChromeTraceSummary summary;
  std::string error;
  EXPECT_FALSE(ParseChromeTrace("{\"traceEvents\": [", &summary, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(ParseChromeTrace("[]", &summary, &error));  // root must be an object
  EXPECT_FALSE(ParseChromeTrace("{\"traceEvents\": 3}", &summary, &error));
  EXPECT_FALSE(ParseChromeTrace("{\"traceEvents\": [{\"name\": 1}]}", &summary, &error));
}

TEST(ChromeTraceExportTest, JsonEscapesControlCharactersInNames) {
  // Counter names flow into JSON strings; make sure the writer escapes them.
  MetricsWindowSample sample;
  sample.values = {{"weird\"name\n", 1.0}};
  TraceRecorder recorder(/*ring_capacity=*/4);
  const std::string json = ChromeTraceJson(recorder.TakeSnapshot(), {sample});
  ChromeTraceSummary summary;
  std::string error;
  ASSERT_TRUE(ParseChromeTrace(json, &summary, &error)) << error;
  EXPECT_EQ(summary.counter_counts.size(), 1u);
}

}  // namespace
}  // namespace iccache
