#include "src/index/hnsw.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/mathutil.h"
#include "src/common/rng.h"

namespace iccache {
namespace {

std::vector<float> RandomUnitVector(Rng& rng, size_t dim) {
  std::vector<float> v(dim);
  for (auto& x : v) {
    x = static_cast<float>(rng.Normal());
  }
  NormalizeL2(v);
  return v;
}

TEST(HnswIndexTest, AddSearchRemove) {
  HnswIndexConfig config;
  config.dim = 4;
  HnswIndex index(config);
  EXPECT_TRUE(index.Add(1, {1.0f, 0.0f, 0.0f, 0.0f}).ok());
  EXPECT_TRUE(index.Add(2, {0.0f, 1.0f, 0.0f, 0.0f}).ok());
  EXPECT_EQ(index.size(), 2u);

  const auto results = index.Search({1.0f, 0.0f, 0.0f, 0.0f}, 1);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].id, 1u);
  EXPECT_NEAR(results[0].score, 1.0, 1e-6);

  EXPECT_TRUE(index.Remove(1));
  EXPECT_FALSE(index.Remove(1));
  EXPECT_EQ(index.size(), 1u);
  EXPECT_EQ(index.Search({1.0f, 0.0f, 0.0f, 0.0f}, 1)[0].id, 2u);
}

TEST(HnswIndexTest, DimensionMismatchRejected) {
  HnswIndexConfig config;
  config.dim = 4;
  HnswIndex index(config);
  EXPECT_FALSE(index.Add(1, {1.0f}).ok());
  EXPECT_TRUE(index.Search({1.0f}, 3).empty());  // malformed query: no results
}

TEST(HnswIndexTest, OverwriteExistingId) {
  HnswIndexConfig config;
  config.dim = 2;
  HnswIndex index(config);
  ASSERT_TRUE(index.Add(1, {1.0f, 0.0f}).ok());
  ASSERT_TRUE(index.Add(1, {0.0f, 1.0f}).ok());
  EXPECT_EQ(index.size(), 1u);
  const auto results = index.Search({0.0f, 1.0f}, 1);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].id, 1u);
  EXPECT_NEAR(results[0].score, 1.0, 1e-6);
}

TEST(HnswIndexTest, ResultsSortedDescendingAndUnique) {
  HnswIndexConfig config;
  config.dim = 8;
  HnswIndex index(config);
  Rng rng(21);
  for (uint64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(index.Add(i, RandomUnitVector(rng, 8)).ok());
  }
  const auto results = index.Search(RandomUnitVector(rng, 8), 20);
  ASSERT_EQ(results.size(), 20u);
  std::set<uint64_t> unique;
  for (size_t i = 0; i < results.size(); ++i) {
    unique.insert(results[i].id);
    if (i > 0) {
      EXPECT_GE(results[i - 1].score, results[i].score);
    }
  }
  EXPECT_EQ(unique.size(), results.size());
}

TEST(HnswIndexTest, KLargerThanSize) {
  HnswIndexConfig config;
  config.dim = 2;
  HnswIndex index(config);
  index.Add(1, {1.0f, 0.0f});
  EXPECT_EQ(index.Search({1.0f, 0.0f}, 10).size(), 1u);
  EXPECT_TRUE(index.Search({1.0f, 0.0f}, 0).empty());
}

TEST(HnswIndexTest, EmptyIndexSearch) {
  HnswIndex index;
  EXPECT_TRUE(index.Search(std::vector<float>(128, 0.0f), 5).empty());
}

// Satellite acceptance: recall@10 >= 0.9 against FlatIndex ground truth on
// 10k synthetic normalized vectors.
TEST(HnswIndexTest, RecallAtTenAgainstFlatGroundTruth) {
  const size_t dim = 64;
  const size_t n = 10000;
  const size_t k = 10;
  const int queries = 100;

  HnswIndexConfig config;
  config.dim = dim;
  HnswIndex approx(config);
  FlatIndex exact(dim);
  Rng rng(31);
  for (uint64_t i = 0; i < n; ++i) {
    const auto v = RandomUnitVector(rng, dim);
    ASSERT_TRUE(approx.Add(i, v).ok());
    ASSERT_TRUE(exact.Add(i, v).ok());
  }

  size_t hits = 0;
  for (int q = 0; q < queries; ++q) {
    const auto query = RandomUnitVector(rng, dim);
    const auto truth = exact.Search(query, k);
    const auto found = approx.Search(query, k);
    std::set<uint64_t> truth_ids;
    for (const auto& r : truth) {
      truth_ids.insert(r.id);
    }
    for (const auto& r : found) {
      hits += truth_ids.count(r.id);
    }
  }
  const double recall = static_cast<double>(hits) / static_cast<double>(queries * k);
  EXPECT_GE(recall, 0.9) << "recall@10 = " << recall;
}

// Self-recall: querying with a stored vector must find it (the stage-1
// retrieval common case — a paraphrase of a cached request).
TEST(HnswIndexTest, NearDuplicateQueryAlwaysFound) {
  const size_t dim = 16;
  HnswIndexConfig config;
  config.dim = dim;
  HnswIndex index(config);
  Rng rng(32);
  std::vector<std::vector<float>> stored;
  for (uint64_t i = 0; i < 500; ++i) {
    stored.push_back(RandomUnitVector(rng, dim));
    ASSERT_TRUE(index.Add(i, stored.back()).ok());
  }
  int hits = 0;
  for (uint64_t i = 0; i < 500; ++i) {
    const auto results = index.Search(stored[i], 1);
    if (!results.empty() && results[0].id == i) {
      ++hits;
    }
  }
  EXPECT_GE(hits, 495);
}

// Satellite acceptance: tombstoned ids never appear in search results, at any
// k, before and after the automatic compaction kicks in.
TEST(HnswIndexTest, DeletedIdsNeverReturned) {
  const size_t dim = 16;
  HnswIndexConfig config;
  config.dim = dim;
  config.min_tombstones_to_compact = 64;
  HnswIndex index(config);
  Rng rng(33);
  const size_t n = 600;
  for (uint64_t i = 0; i < n; ++i) {
    ASSERT_TRUE(index.Add(i, RandomUnitVector(rng, dim)).ok());
  }
  // Delete every third id, probing after each batch of deletions.
  std::set<uint64_t> deleted;
  for (uint64_t i = 0; i < n; i += 3) {
    ASSERT_TRUE(index.Remove(i));
    deleted.insert(i);
    if (i % 60 == 0) {
      for (const auto& result : index.Search(RandomUnitVector(rng, dim), 25)) {
        EXPECT_EQ(deleted.count(result.id), 0u) << "tombstoned id " << result.id << " returned";
      }
    }
  }
  EXPECT_EQ(index.size(), n - deleted.size());
  // Deleting a third of the index crosses max_tombstone_fraction = 0.25, so
  // compaction must have run at least once along the way.
  EXPECT_LE(index.tombstones(),
            static_cast<size_t>(config.max_tombstone_fraction *
                                static_cast<double>(index.size() + index.tombstones())) +
                1);
  for (const auto& result : index.Search(RandomUnitVector(rng, dim), n)) {
    EXPECT_EQ(deleted.count(result.id), 0u);
  }
}

TEST(HnswIndexTest, CompactDropsAllTombstonesAndPreservesRecall) {
  const size_t dim = 16;
  HnswIndexConfig config;
  config.dim = dim;
  config.min_tombstones_to_compact = 1 << 30;  // disable auto-compaction
  HnswIndex index(config);
  Rng rng(34);
  std::vector<std::vector<float>> stored;
  for (uint64_t i = 0; i < 400; ++i) {
    stored.push_back(RandomUnitVector(rng, dim));
    ASSERT_TRUE(index.Add(i, stored[i]).ok());
  }
  for (uint64_t i = 0; i < 400; i += 2) {
    ASSERT_TRUE(index.Remove(i));
  }
  EXPECT_EQ(index.tombstones(), 200u);
  index.Compact();
  EXPECT_EQ(index.tombstones(), 0u);
  EXPECT_EQ(index.size(), 200u);
  int hits = 0;
  for (uint64_t i = 1; i < 400; i += 2) {
    const auto results = index.Search(stored[i], 1);
    if (!results.empty() && results[0].id == i) {
      ++hits;
    }
  }
  EXPECT_GE(hits, 195);
}

TEST(HnswIndexTest, RemoveAllThenReuse) {
  HnswIndexConfig config;
  config.dim = 4;
  HnswIndex index(config);
  Rng rng(35);
  for (uint64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(index.Add(i, RandomUnitVector(rng, 4)).ok());
  }
  for (uint64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(index.Remove(i));
  }
  EXPECT_EQ(index.size(), 0u);
  EXPECT_EQ(index.tombstones(), 0u);
  EXPECT_TRUE(index.Search(RandomUnitVector(rng, 4), 5).empty());
  ASSERT_TRUE(index.Add(99, RandomUnitVector(rng, 4)).ok());
  EXPECT_EQ(index.Search(RandomUnitVector(rng, 4), 5).size(), 1u);
}

TEST(HnswIndexTest, WiderBeamNeverHurtsRecall) {
  const size_t dim = 32;
  HnswIndexConfig config;
  config.dim = dim;
  HnswIndex index(config);
  FlatIndex exact(dim);
  Rng rng(36);
  for (uint64_t i = 0; i < 2000; ++i) {
    const auto v = RandomUnitVector(rng, dim);
    ASSERT_TRUE(index.Add(i, v).ok());
    ASSERT_TRUE(exact.Add(i, v).ok());
  }
  size_t narrow_hits = 0;
  size_t wide_hits = 0;
  for (int q = 0; q < 40; ++q) {
    const auto query = RandomUnitVector(rng, dim);
    std::set<uint64_t> truth;
    for (const auto& r : exact.Search(query, 10)) {
      truth.insert(r.id);
    }
    for (const auto& r : index.SearchEf(query, 10, 16)) {
      narrow_hits += truth.count(r.id);
    }
    for (const auto& r : index.SearchEf(query, 10, 256)) {
      wide_hits += truth.count(r.id);
    }
  }
  EXPECT_GE(wide_hits, narrow_hits);
  EXPECT_GE(wide_hits, static_cast<size_t>(40 * 10 * 0.95));
}

class HnswSizeSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(HnswSizeSweep, SearchReturnsRequestedK) {
  const size_t n = GetParam();
  HnswIndexConfig config;
  config.dim = 8;
  HnswIndex index(config);
  Rng rng(37);
  for (uint64_t i = 0; i < n; ++i) {
    index.Add(i, RandomUnitVector(rng, 8));
  }
  const auto results = index.Search(RandomUnitVector(rng, 8), 5);
  EXPECT_EQ(results.size(), std::min<size_t>(5, n));
  std::set<uint64_t> unique;
  for (const auto& r : results) {
    unique.insert(r.id);
  }
  EXPECT_EQ(unique.size(), results.size());
}

INSTANTIATE_TEST_SUITE_P(Sizes, HnswSizeSweep, ::testing::Values(0u, 1u, 2u, 7u, 63u, 100u, 333u));

}  // namespace
}  // namespace iccache
