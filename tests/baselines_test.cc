#include <memory>

#include <gtest/gtest.h>

#include "src/baselines/rag.h"
#include "src/baselines/route_llm.h"
#include "src/baselines/semantic_cache.h"
#include "src/baselines/sft.h"
#include "src/common/stats.h"
#include "src/embedding/embedder.h"
#include "src/llm/model_profile.h"
#include "src/workload/query_generator.h"

namespace iccache {
namespace {

std::shared_ptr<const Embedder> SharedEmbedder() {
  return std::make_shared<HashingEmbedder>();
}

TEST(SemanticCacheTest, ExactTextAlwaysHits) {
  SemanticCache cache(SharedEmbedder(), 0.9);
  Request req;
  req.text = "what is the boiling point of water";
  cache.Put(req, 0.9, 100);
  const auto hit = cache.Lookup(req);
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(hit->similarity, 1.0, 1e-5);
  EXPECT_NEAR(hit->entry.response_quality, 0.9, 1e-9);
}

TEST(SemanticCacheTest, MissBelowThreshold) {
  SemanticCache cache(SharedEmbedder(), 0.95);
  Request stored;
  stored.text = "alpha beta gamma delta";
  cache.Put(stored, 0.8, 50);
  Request query;
  query.text = "completely different words here";
  EXPECT_FALSE(cache.Lookup(query).has_value());
  const std::optional<double> nearest = cache.NearestSimilarity(query);
  ASSERT_TRUE(nearest.has_value());
  EXPECT_LT(*nearest, 0.95);
}

TEST(SemanticCacheTest, EmptyCacheNeverHits) {
  // Even with a threshold of 0.0 — a legitimately negative cosine would have
  // cleared the old -1.0 empty-cache sentinel.
  SemanticCache cache(SharedEmbedder(), 0.0);
  Request query;
  query.text = "anything";
  EXPECT_FALSE(cache.Lookup(query).has_value());
  EXPECT_FALSE(cache.NearestSimilarity(query).has_value());
}

TEST(SemanticCacheTest, LoweringThresholdRaisesHitRate) {
  // The Figure 3(b)/14 mechanism: hit rate is controlled by the similarity
  // threshold.
  auto embedder = SharedEmbedder();
  QueryGenerator gen(GetDatasetProfile(DatasetId::kMsMarco), 21);
  SemanticCache cache(embedder, 0.9);
  for (const Request& req : gen.Generate(300)) {
    cache.Put(req, 0.85, 100);
  }
  const std::vector<Request> queries = gen.Generate(200);
  auto hit_rate = [&](double threshold) {
    cache.set_similarity_threshold(threshold);
    int hits = 0;
    for (const Request& q : queries) {
      hits += cache.Lookup(q).has_value() ? 1 : 0;
    }
    return static_cast<double>(hits) / queries.size();
  };
  const double strict = hit_rate(0.97);
  const double medium = hit_rate(0.85);
  const double loose = hit_rate(0.55);
  EXPECT_LE(strict, medium);
  EXPECT_LE(medium, loose);
  EXPECT_GT(loose, 0.9);
  EXPECT_LT(strict, 0.5);
}

TEST(SemanticCacheTest, SizeTracksInsertions) {
  SemanticCache cache(SharedEmbedder(), 0.8);
  EXPECT_EQ(cache.size(), 0u);
  Request req;
  req.text = "a";
  cache.Put(req, 0.5, 10);
  req.text = "b";
  cache.Put(req, 0.5, 10);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(RouteLlmTest, EstimateIsDeterministicPerRequest) {
  RouteLlmRouter router;
  Request req;
  req.id = 42;
  req.difficulty = 0.5;
  EXPECT_DOUBLE_EQ(router.EstimateDifficulty(req), router.EstimateDifficulty(req));
}

TEST(RouteLlmTest, EstimateTracksGroundTruth) {
  RouteLlmRouter router;
  RunningStat error;
  Rng rng(31);
  for (uint64_t i = 0; i < 1000; ++i) {
    Request req;
    req.id = i;
    req.difficulty = rng.Uniform();
    error.Add(router.EstimateDifficulty(req) - req.difficulty);
  }
  EXPECT_NEAR(error.mean(), 0.0, 0.02);
  EXPECT_LT(error.stddev(), 0.2);
}

TEST(RouteLlmTest, ThresholdControlsOffloadRatio) {
  Rng rng(32);
  std::vector<Request> requests;
  for (uint64_t i = 0; i < 1000; ++i) {
    Request req;
    req.id = i;
    req.difficulty = rng.Beta(2.0, 3.0);
    requests.push_back(req);
  }
  auto offload_ratio = [&requests](double threshold) {
    RouteLlmConfig config;
    config.difficulty_threshold = threshold;
    RouteLlmRouter router(config);
    int small = 0;
    for (const auto& req : requests) {
      small += router.RouteToLarge(req) ? 0 : 1;
    }
    return static_cast<double>(small) / requests.size();
  };
  EXPECT_LT(offload_ratio(0.2), offload_ratio(0.5));
  EXPECT_LT(offload_ratio(0.5), offload_ratio(0.8));
  EXPECT_GT(offload_ratio(0.99), 0.95);
}

TEST(RouteLlmTest, LoadObliviousByConstruction) {
  // The baseline's defining limitation: decisions never change with load.
  RouteLlmRouter router;
  Request req;
  req.id = 7;
  req.difficulty = 0.6;
  const bool before = router.RouteToLarge(req);
  // (No load input exists to vary; re-query must be identical.)
  EXPECT_EQ(router.RouteToLarge(req), before);
}

TEST(RagPipelineTest, CoveredTopicsGetBoost) {
  const DatasetProfile profile = GetDatasetProfile(DatasetId::kMsMarco);
  RagPipeline rag(profile);
  RunningStat boosts;
  QueryGenerator gen(profile, 33);
  int covered = 0;
  int total = 0;
  for (const Request& req : gen.Generate(400)) {
    const RagContext context = rag.Retrieve(req);
    ++total;
    if (context.covered) {
      ++covered;
      EXPECT_GT(context.capability_boost, 0.0);
    } else {
      EXPECT_LE(context.capability_boost, 0.0);
    }
    boosts.Add(context.capability_boost);
  }
  // Coverage is configured per topic at 75%, but requests are Zipf-weighted
  // toward head topics, so the per-request rate has wide variance.
  EXPECT_GT(static_cast<double>(covered) / total, 0.40);
  EXPECT_LT(static_cast<double>(covered) / total, 0.98);
  EXPECT_GT(boosts.mean(), 0.0);
}

TEST(RagPipelineTest, PromptCostIsSubstantial) {
  const DatasetProfile profile = GetDatasetProfile(DatasetId::kNaturalQuestions);
  RagPipeline rag(profile);
  QueryGenerator gen(profile, 34);
  const RagContext context = rag.Retrieve(gen.Next());
  EXPECT_EQ(context.prompt_tokens_added, 5 * 220);
}

TEST(RagPipelineTest, ReasoningTasksBenefitLess) {
  RagConfig config;
  config.corpus_topic_coverage = 1.0;  // isolate the task factor
  const DatasetProfile qa = GetDatasetProfile(DatasetId::kMsMarco);
  const DatasetProfile math = GetDatasetProfile(DatasetId::kMath500);
  RagPipeline rag_qa(qa, config);
  RagPipeline rag_math(math, config);
  QueryGenerator gen_qa(qa, 35);
  QueryGenerator gen_math(math, 35);
  RunningStat qa_boost;
  RunningStat math_boost;
  for (int i = 0; i < 300; ++i) {
    qa_boost.Add(rag_qa.Retrieve(gen_qa.Next()).capability_boost);
    math_boost.Add(rag_math.Retrieve(gen_math.Next()).capability_boost);
  }
  EXPECT_GT(qa_boost.mean(), math_boost.mean() * 1.5);
}

TEST(RagPipelineTest, RetrievalDeterministicPerRequest) {
  const DatasetProfile profile = GetDatasetProfile(DatasetId::kMsMarco);
  RagPipeline rag(profile);
  QueryGenerator gen(profile, 36);
  const Request req = gen.Next();
  EXPECT_DOUBLE_EQ(rag.Retrieve(req).capability_boost, rag.Retrieve(req).capability_boost);
}

TEST(SftAdapterTest, InDomainBoostOutOfDomainPenalty) {
  ModelCatalog catalog;
  const ModelProfile base = catalog.Get("gemma-2-2b");
  SftModelAdapter sft(base, DatasetId::kNaturalQuestions);
  const ModelProfile in_domain = sft.ProfileFor(DatasetId::kNaturalQuestions);
  const ModelProfile out_of_domain = sft.ProfileFor(DatasetId::kAlpaca);
  EXPECT_GT(in_domain.capability, base.capability);
  EXPECT_LT(out_of_domain.capability, base.capability);
  // Table 3's asymmetry: the OOD regression dwarfs the in-domain gain.
  EXPECT_GT(base.capability - out_of_domain.capability,
            in_domain.capability - base.capability);
}

TEST(SftAdapterTest, LatencyProfileUnchanged) {
  ModelCatalog catalog;
  const ModelProfile base = catalog.Get("gemma-2-2b");
  SftModelAdapter sft(base, DatasetId::kMsMarco);
  const ModelProfile adapted = sft.ProfileFor(DatasetId::kMsMarco);
  EXPECT_EQ(adapted.decode_tps, base.decode_tps);
  EXPECT_EQ(adapted.prefill_tps, base.prefill_tps);
  EXPECT_EQ(adapted.gpus_required, base.gpus_required);
}

TEST(SftAdapterTest, CapabilityClamped) {
  ModelProfile base;
  base.name = "tiny";
  base.capability = 0.02;
  SftModelAdapter sft(base, DatasetId::kMsMarco, SftConfig{.in_domain_boost = 0.05,
                                                           .out_of_domain_penalty = 0.5});
  EXPECT_GE(sft.ProfileFor(DatasetId::kAlpaca).capability, 0.0);
}

}  // namespace
}  // namespace iccache
