// Kernel correctness suite for the runtime-dispatched SIMD distance kernels.
//
// Every test here runs under BOTH dispatch outcomes: ci.sh executes this
// binary once normally (AVX2 on capable hardware) and once with
// ICCACHE_FORCE_SCALAR=1, in which case the dispatched kernels ARE the scalar
// references and the agreement checks become identities.
#include "src/common/simd.h"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace iccache {
namespace {

// Dims exercising every vector-loop shape: sub-lane (1..8), one short of a
// full 128-bit/256-bit multiple, exact multiples, and a ragged tail.
const size_t kDims[] = {1, 2, 3, 4, 5, 6, 7, 8, 127, 128, 131};

std::vector<float> RandomVec(Rng& rng, size_t n) {
  std::vector<float> v(n);
  for (auto& x : v) {
    x = static_cast<float>(rng.Normal());
  }
  return v;
}

// Relative-plus-absolute tolerance for float-accumulated kernels: AVX2 (8-lane
// FMA) and the scalar 4-accumulator unroll round differently.
void ExpectClose(double got, double want, double n) {
  const double tol = 1e-5 * std::max(1.0, std::fabs(want)) + 1e-6 * std::sqrt(n);
  EXPECT_NEAR(got, want, tol);
}

TEST(SimdDispatchTest, LevelIsStableAndNamed) {
  const simd::KernelLevel level = simd::ActiveKernelLevel();
  EXPECT_EQ(level, simd::ActiveKernelLevel());  // fixed per process
  const std::string name = simd::KernelLevelName(level);
  EXPECT_TRUE(name == "scalar" || name == "avx2");
}

TEST(SimdDispatchTest, ResolverHonorsForceScalar) {
  EXPECT_EQ(simd::ResolveKernelLevel(true, true), simd::KernelLevel::kScalar);
  EXPECT_EQ(simd::ResolveKernelLevel(false, false), simd::KernelLevel::kScalar);
  EXPECT_EQ(simd::ResolveKernelLevel(true, false), simd::KernelLevel::kAvx2);
}

TEST(SimdDispatchTest, EnvOverrideIsRespected) {
  // The dispatcher latched the env at first use; assert the latch agrees with
  // the environment this process actually runs under.
  const char* env = std::getenv("ICCACHE_FORCE_SCALAR");
  const bool forced = env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0;
  EXPECT_EQ(simd::ScalarForced(), forced);
  if (forced) {
    EXPECT_EQ(simd::ActiveKernelLevel(), simd::KernelLevel::kScalar);
  }
}

TEST(SimdKernelTest, DotMatchesScalarReferenceAcrossDims) {
  Rng rng(0x51d07);
  for (size_t n : kDims) {
    for (int trial = 0; trial < 8; ++trial) {
      const std::vector<float> a = RandomVec(rng, n);
      const std::vector<float> b = RandomVec(rng, n);
      ExpectClose(simd::Dot(a.data(), b.data(), n),
                  simd::ScalarDot(a.data(), b.data(), n), static_cast<double>(n));
    }
  }
}

TEST(SimdKernelTest, L2SqMatchesScalarReferenceAcrossDims) {
  Rng rng(0x51d12);
  for (size_t n : kDims) {
    for (int trial = 0; trial < 8; ++trial) {
      const std::vector<float> a = RandomVec(rng, n);
      const std::vector<float> b = RandomVec(rng, n);
      ExpectClose(simd::L2Sq(a.data(), b.data(), n),
                  simd::ScalarL2Sq(a.data(), b.data(), n), static_cast<double>(n));
    }
  }
}

TEST(SimdKernelTest, DotI8IsBitExactAcrossDims) {
  Rng rng(0x51d18);
  for (size_t n : kDims) {
    for (int trial = 0; trial < 8; ++trial) {
      std::vector<int8_t> a(n), b(n);
      for (size_t i = 0; i < n; ++i) {
        a[i] = static_cast<int8_t>(static_cast<int>(rng.UniformInt(255)) - 127);
        b[i] = static_cast<int8_t>(static_cast<int>(rng.UniformInt(255)) - 127);
      }
      // Integer kernels must agree EXACTLY — graph traversal determinism
      // depends on it.
      EXPECT_EQ(simd::DotI8(a.data(), b.data(), n), simd::ScalarDotI8(a.data(), b.data(), n));
    }
  }
}

TEST(SimdKernelTest, DotI8SaturatedExtremes) {
  // All-(-127) x all-127 at a madd-pair-heavy dim: exercises the widened
  // int16 pairwise path at its largest magnitudes.
  const size_t n = 128;
  std::vector<int8_t> a(n, -127), b(n, 127);
  const int32_t want = -127 * 127 * static_cast<int32_t>(n);
  EXPECT_EQ(simd::DotI8(a.data(), b.data(), n), want);
  EXPECT_EQ(simd::ScalarDotI8(a.data(), b.data(), n), want);
}

TEST(SimdKernelTest, DotF32I8MatchesScalarReferenceAcrossDims) {
  Rng rng(0x51d22);
  for (size_t n : kDims) {
    for (int trial = 0; trial < 8; ++trial) {
      const std::vector<float> a = RandomVec(rng, n);
      std::vector<int8_t> b(n);
      for (size_t i = 0; i < n; ++i) {
        b[i] = static_cast<int8_t>(static_cast<int>(rng.UniformInt(255)) - 127);
      }
      // int8 magnitudes reach 127, so scale the tolerance by it.
      const double want = simd::ScalarDotF32I8(a.data(), b.data(), n);
      const double tol = 1e-5 * std::max(1.0, std::fabs(want)) +
                         127.0 * 1e-6 * std::sqrt(static_cast<double>(n));
      EXPECT_NEAR(simd::DotF32I8(a.data(), b.data(), n), want, tol);
    }
  }
}

TEST(SimdKernelTest, UnalignedPointersAreSafe) {
  // Kernels use unaligned loads; feed them pointers offset by 1..3 elements
  // (and 1..3 bytes for int8) from a fresh allocation.
  Rng rng(0x51d33);
  const size_t n = 131;
  for (size_t offset = 1; offset <= 3; ++offset) {
    std::vector<float> fa = RandomVec(rng, n + offset);
    std::vector<float> fb = RandomVec(rng, n + offset);
    const float* a = fa.data() + offset;
    const float* b = fb.data() + offset;
    ExpectClose(simd::Dot(a, b, n), simd::ScalarDot(a, b, n), static_cast<double>(n));
    ExpectClose(simd::L2Sq(a, b, n), simd::ScalarL2Sq(a, b, n), static_cast<double>(n));

    std::vector<int8_t> qa(n + offset), qb(n + offset);
    for (size_t i = 0; i < n + offset; ++i) {
      qa[i] = static_cast<int8_t>(static_cast<int>(rng.UniformInt(255)) - 127);
      qb[i] = static_cast<int8_t>(static_cast<int>(rng.UniformInt(255)) - 127);
    }
    EXPECT_EQ(simd::DotI8(qa.data() + offset, qb.data() + offset, n),
              simd::ScalarDotI8(qa.data() + offset, qb.data() + offset, n));
  }
}

TEST(SimdKernelTest, ZeroLengthIsZero) {
  const float f = 1.0f;
  const int8_t q = 1;
  EXPECT_EQ(simd::Dot(&f, &f, 0), 0.0);
  EXPECT_EQ(simd::L2Sq(&f, &f, 0), 0.0);
  EXPECT_EQ(simd::DotI8(&q, &q, 0), 0);
  EXPECT_EQ(simd::DotF32I8(&f, &q, 0), 0.0);
}

TEST(SimdKernelTest, CosineMatchesMathutilSemantics) {
  Rng rng(0x51d44);
  const std::vector<float> a = RandomVec(rng, 128);
  const std::vector<float> b = RandomVec(rng, 128);
  const double cosine = simd::Cosine(a.data(), b.data(), a.size());
  EXPECT_GE(cosine, -1.0);
  EXPECT_LE(cosine, 1.0);
  // Self-similarity is 1, zero vectors yield 0.
  EXPECT_NEAR(simd::Cosine(a.data(), a.data(), a.size()), 1.0, 1e-6);
  const std::vector<float> zero(128, 0.0f);
  EXPECT_EQ(simd::Cosine(zero.data(), b.data(), zero.size()), 0.0);
}

TEST(SimdQuantizeTest, RoundTripErrorIsBoundedByHalfScale) {
  Rng rng(0x0a7e);
  for (size_t n : kDims) {
    const std::vector<float> src = RandomVec(rng, n);
    std::vector<int8_t> q(n);
    float scale = -1.0f;
    simd::QuantizeI8(src.data(), n, q.data(), &scale);
    ASSERT_GE(scale, 0.0f);
    std::vector<float> deq(n);
    simd::DequantizeI8(q.data(), n, scale, deq.data());
    for (size_t i = 0; i < n; ++i) {
      // Documented element-wise bound: |x - deq(q(x))| <= scale / 2 (plus a
      // float-rounding epsilon).
      EXPECT_LE(std::fabs(src[i] - deq[i]), 0.5f * scale + 1e-6f);
      EXPECT_GE(q[i], -127);
      EXPECT_LE(q[i], 127);
    }
  }
}

TEST(SimdQuantizeTest, MaxMagnitudeElementHitsFullRange) {
  const std::vector<float> src = {0.25f, -1.0f, 0.5f, 0.125f};
  std::vector<int8_t> q(src.size());
  float scale = 0.0f;
  simd::QuantizeI8(src.data(), src.size(), q.data(), &scale);
  EXPECT_EQ(q[1], -127);  // the max-|x| element maps to the rail
  EXPECT_FLOAT_EQ(scale, 1.0f / 127.0f);
}

TEST(SimdQuantizeTest, ZeroVectorQuantizesToZeroScale) {
  const std::vector<float> src(64, 0.0f);
  std::vector<int8_t> q(src.size(), 1);
  float scale = 1.0f;
  simd::QuantizeI8(src.data(), src.size(), q.data(), &scale);
  EXPECT_EQ(scale, 0.0f);
  for (int8_t v : q) {
    EXPECT_EQ(v, 0);
  }
}

TEST(SimdQuantizeTest, QuantizedDotApproximatesFloatDot) {
  // End-to-end sanity for the symmetric-scale similarity used by the HNSW
  // traversal: dotI8(qa, qb) * sa * sb must track the float dot.
  Rng rng(0x0a7e2);
  for (int trial = 0; trial < 16; ++trial) {
    const size_t n = 128;
    std::vector<float> a = RandomVec(rng, n);
    std::vector<float> b = RandomVec(rng, n);
    std::vector<int8_t> qa(n), qb(n);
    float sa = 0.0f, sb = 0.0f;
    simd::QuantizeI8(a.data(), n, qa.data(), &sa);
    simd::QuantizeI8(b.data(), n, qb.data(), &sb);
    const double approx = static_cast<double>(simd::DotI8(qa.data(), qb.data(), n)) *
                          static_cast<double>(sa) * static_cast<double>(sb);
    const double exact = simd::ScalarDot(a.data(), b.data(), n);
    // Quantization noise per element <= scale/2; accumulated error for unit-ish
    // normals stays well inside this loose envelope.
    EXPECT_NEAR(approx, exact, 0.05 * static_cast<double>(n) * sa * sb * 127.0 + 0.5);
  }
}

}  // namespace
}  // namespace iccache
