// Unit coverage for the SLO watchdog: per-rule breach detection over crafted
// window-sample series, trigger/clear hysteresis, EMA baseline arming floors,
// and the passivity guarantee that a default-constructed watchdog does
// nothing.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/stats.h"
#include "src/obs/metrics.h"
#include "src/obs/watchdog.h"

namespace iccache {
namespace {

MetricsWindowSample MakeSample(uint64_t window, double requests, double hits,
                               double evicted = 0.0, double stalled = 0.0) {
  MetricsWindowSample sample;
  sample.window = window;
  sample.sim_time_s = static_cast<double>(window);
  sample.mono_ns = window * 1000000;
  // Cumulative counters, name-sorted like a real hub snapshot.
  sample.values = {
      {"examples_evicted_total", evicted},
      {"maintenance_stalled_windows_total", stalled},
      {"requests_total", requests},
      {"stage0_hits_total", hits},
  };
  return sample;
}

TEST(SloWatchdogTest, DefaultConfigIsDisarmedAndSilent) {
  SloWatchdog watchdog;
  EXPECT_FALSE(watchdog.armed());
  LatencyHistogram e2e;
  e2e.Add(100.0);  // absurd latency; nothing is configured to care
  EXPECT_TRUE(watchdog.OnWindow(MakeSample(0, 100, 0), e2e).empty());
  EXPECT_TRUE(watchdog.OnWindow(MakeSample(1, 200, 0), e2e).empty());
  EXPECT_TRUE(watchdog.events().empty());
}

TEST(SloWatchdogTest, SloP99FiresAfterConsecutiveBreachesAndLatches) {
  WatchdogConfig config;
  config.slo_e2e_p99_s = 0.1;  // trigger_windows/clear_windows stay at 3
  SloWatchdog watchdog(config);
  EXPECT_TRUE(watchdog.armed());

  LatencyHistogram e2e;
  uint64_t window = 0;
  const auto feed = [&](double latency_s) {
    for (int i = 0; i < 10; ++i) {
      e2e.Add(latency_s);
    }
    const uint64_t w = window++;
    return watchdog.OnWindow(MakeSample(w, static_cast<double>(w + 1) * 10.0, 0), e2e);
  };

  // Window 0 only records the baseline snapshots — no delta to judge yet.
  EXPECT_TRUE(feed(0.5).empty());
  // Two breached windows are below the trigger threshold of 3...
  EXPECT_TRUE(feed(0.5).empty());
  EXPECT_TRUE(feed(0.5).empty());
  // ... the third consecutive breach latches and fires exactly once.
  const std::vector<WatchdogEvent> fired = feed(0.5);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].rule, WatchdogRule::kSloE2eP99);
  EXPECT_GT(fired[0].value, 0.1);
  EXPECT_DOUBLE_EQ(fired[0].threshold, 0.1);
  EXPECT_FALSE(fired[0].detail.empty());
  EXPECT_TRUE(watchdog.latched(WatchdogRule::kSloE2eP99));

  // Latched: further breaches stay silent instead of spamming.
  EXPECT_TRUE(feed(0.5).empty());
  EXPECT_TRUE(feed(0.5).empty());

  // Three consecutive clean windows clear the latch...
  EXPECT_TRUE(feed(0.01).empty());
  EXPECT_TRUE(feed(0.01).empty());
  EXPECT_TRUE(feed(0.01).empty());
  EXPECT_FALSE(watchdog.latched(WatchdogRule::kSloE2eP99));

  // ... after which a fresh run of breaches fires again.
  EXPECT_TRUE(feed(0.5).empty());
  EXPECT_TRUE(feed(0.5).empty());
  EXPECT_EQ(feed(0.5).size(), 1u);
  EXPECT_EQ(watchdog.events().size(), 2u);
}

TEST(SloWatchdogTest, CleanWindowResetsTheBreachStreak) {
  WatchdogConfig config;
  config.slo_e2e_p99_s = 0.1;
  SloWatchdog watchdog(config);
  LatencyHistogram e2e;
  uint64_t window = 0;
  const auto feed = [&](double latency_s) {
    for (int i = 0; i < 10; ++i) {
      e2e.Add(latency_s);
    }
    const uint64_t w = window++;
    return watchdog.OnWindow(MakeSample(w, static_cast<double>(w + 1) * 10.0, 0), e2e);
  };
  feed(0.01);  // baseline
  // breach, breach, clean, breach, breach: never 3 in a row -> never fires.
  EXPECT_TRUE(feed(0.5).empty());
  EXPECT_TRUE(feed(0.5).empty());
  EXPECT_TRUE(feed(0.01).empty());
  EXPECT_TRUE(feed(0.5).empty());
  EXPECT_TRUE(feed(0.5).empty());
  EXPECT_TRUE(watchdog.events().empty());
}

TEST(SloWatchdogTest, Stage0CollapseFiresAgainstTrailingEma) {
  WatchdogConfig config;
  config.stage0_drop_fraction = 0.5;
  config.trigger_windows = 1;  // isolate the rule from hysteresis here
  SloWatchdog watchdog(config);
  LatencyHistogram e2e;

  // Five healthy windows: +100 requests, +60 hits each -> EMA ~0.6.
  double requests = 0.0;
  double hits = 0.0;
  uint64_t window = 0;
  for (; window < 5; ++window) {
    requests += 100.0;
    hits += 60.0;
    EXPECT_TRUE(watchdog.OnWindow(MakeSample(window, requests, hits), e2e).empty());
  }
  // Collapse: requests keep flowing, hits stop dead.
  requests += 100.0;
  const std::vector<WatchdogEvent> fired =
      watchdog.OnWindow(MakeSample(window, requests, hits), e2e);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].rule, WatchdogRule::kStage0HitRateDrop);
  EXPECT_EQ(fired[0].window, window);
  EXPECT_DOUBLE_EQ(fired[0].value, 0.0);
}

TEST(SloWatchdogTest, Stage0RuleStaysQuietBelowTheEmaFloor) {
  // An all-miss workload from the start never builds an EMA above the
  // arming floor, so the drop rule must not fire on cold-start noise.
  WatchdogConfig config;
  config.stage0_drop_fraction = 0.5;
  config.trigger_windows = 1;
  SloWatchdog watchdog(config);
  LatencyHistogram e2e;
  double requests = 0.0;
  for (uint64_t window = 0; window < 10; ++window) {
    requests += 100.0;
    EXPECT_TRUE(watchdog.OnWindow(MakeSample(window, requests, 0.0), e2e).empty());
  }
  EXPECT_TRUE(watchdog.events().empty());
}

TEST(SloWatchdogTest, QueueDelayGrowthFiresAgainstTrailingEma) {
  WatchdogConfig config;
  config.queue_growth_factor = 3.0;
  config.trigger_windows = 1;
  SloWatchdog watchdog(config);
  LatencyHistogram e2e;
  LatencyHistogram queue;
  uint64_t window = 0;
  const auto feed = [&](double delay_s) {
    for (int i = 0; i < 10; ++i) {
      queue.Add(delay_s);
    }
    const uint64_t w = window++;
    return watchdog.OnWindow(MakeSample(w, static_cast<double>(w + 1) * 10.0, 0), e2e, queue);
  };
  // Steady windows build the baseline EMA around 10 ms.
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(feed(0.010).empty());
  }
  // A 20x jump in the window's mean queue delay breaches the 3x factor.
  const std::vector<WatchdogEvent> fired = feed(0.200);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].rule, WatchdogRule::kQueueDelayGrowth);
}

TEST(SloWatchdogTest, EvictionStormFiresOnSingleWindowBurst) {
  WatchdogConfig config;
  config.eviction_storm_threshold = 10.0;
  config.trigger_windows = 1;
  SloWatchdog watchdog(config);
  LatencyHistogram e2e;
  EXPECT_TRUE(watchdog.OnWindow(MakeSample(0, 100, 0, /*evicted=*/0), e2e).empty());
  EXPECT_TRUE(watchdog.OnWindow(MakeSample(1, 200, 0, /*evicted=*/5), e2e).empty());
  const std::vector<WatchdogEvent> fired =
      watchdog.OnWindow(MakeSample(2, 300, 0, /*evicted=*/55), e2e);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].rule, WatchdogRule::kEvictionStorm);
  EXPECT_DOUBLE_EQ(fired[0].value, 50.0);  // the per-window delta, not the total
  EXPECT_DOUBLE_EQ(fired[0].threshold, 10.0);
}

TEST(SloWatchdogTest, MaintenanceStallFiresWheneverTheCounterAdvances) {
  WatchdogConfig config;
  config.maintenance_stall_rule = true;
  config.trigger_windows = 1;
  SloWatchdog watchdog(config);
  LatencyHistogram e2e;
  EXPECT_TRUE(watchdog.OnWindow(MakeSample(0, 100, 0, 0, /*stalled=*/0), e2e).empty());
  EXPECT_TRUE(watchdog.OnWindow(MakeSample(1, 200, 0, 0, /*stalled=*/0), e2e).empty());
  const std::vector<WatchdogEvent> fired =
      watchdog.OnWindow(MakeSample(2, 300, 0, 0, /*stalled=*/1), e2e);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].rule, WatchdogRule::kMaintenanceStall);
}

TEST(SloWatchdogTest, ResetForgetsBaselinesLatchesAndEvents) {
  WatchdogConfig config;
  config.eviction_storm_threshold = 10.0;
  config.trigger_windows = 1;
  SloWatchdog watchdog(config);
  LatencyHistogram e2e;
  watchdog.OnWindow(MakeSample(0, 100, 0, 0), e2e);
  ASSERT_EQ(watchdog.OnWindow(MakeSample(1, 200, 0, 100), e2e).size(), 1u);
  EXPECT_TRUE(watchdog.latched(WatchdogRule::kEvictionStorm));

  watchdog.Reset();
  EXPECT_TRUE(watchdog.events().empty());
  EXPECT_FALSE(watchdog.latched(WatchdogRule::kEvictionStorm));
  // After Reset the first window is a baseline again: a huge cumulative
  // eviction count alone is not a per-window burst.
  EXPECT_TRUE(watchdog.OnWindow(MakeSample(2, 300, 0, 100), e2e).empty());
}

TEST(SloWatchdogTest, EveryRuleHasAUniqueName) {
  std::vector<std::string> names;
  for (size_t i = 0; i < static_cast<size_t>(WatchdogRule::kNumRules); ++i) {
    const std::string name = WatchdogRuleName(static_cast<WatchdogRule>(i));
    EXPECT_FALSE(name.empty());
    for (const std::string& previous : names) {
      EXPECT_NE(name, previous);
    }
    names.push_back(name);
  }
}

}  // namespace
}  // namespace iccache
