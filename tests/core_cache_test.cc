#include "src/core/example_cache.h"

#include <memory>

#include <gtest/gtest.h>

#include "src/workload/query_generator.h"

namespace iccache {
namespace {

std::shared_ptr<const Embedder> SharedEmbedder() {
  return std::make_shared<HashingEmbedder>();
}

Request MakeRequest(const std::string& text, uint32_t topic = 0, uint32_t intent = 0) {
  Request req;
  req.text = text;
  req.topic_id = topic;
  req.intent_id = intent;
  req.input_tokens = 40;
  return req;
}

TEST(ExampleCacheTest, PutAndGetRoundTrip) {
  ExampleCache cache(SharedEmbedder());
  const uint64_t id = cache.Put(MakeRequest("how do rainbows form"), "resp", 0.8, 0.785, 120, 1.0);
  ASSERT_NE(id, 0u);
  const Example* example = cache.Get(id);
  ASSERT_NE(example, nullptr);
  EXPECT_EQ(example->response_quality, 0.8);
  EXPECT_EQ(example->source_capability, 0.785);
  EXPECT_EQ(example->response_tokens, 120);
  EXPECT_EQ(example->PromptTokens(), 40 + 120);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_GT(cache.used_bytes(), 0);
}

TEST(ExampleCacheTest, GetUnknownIdReturnsNull) {
  ExampleCache cache(SharedEmbedder());
  EXPECT_EQ(cache.Get(99), nullptr);
}

TEST(ExampleCacheTest, RemoveReleasesBytes) {
  ExampleCache cache(SharedEmbedder());
  const uint64_t id = cache.Put(MakeRequest("abc def"), "r", 0.5, 0.5, 10, 0.0);
  const int64_t used = cache.used_bytes();
  EXPECT_GT(used, 0);
  EXPECT_TRUE(cache.Remove(id));
  EXPECT_EQ(cache.used_bytes(), 0);
  EXPECT_FALSE(cache.Remove(id));
}

TEST(ExampleCacheTest, FindSimilarReturnsNearestFirst) {
  ExampleCache cache(SharedEmbedder());
  const uint64_t id1 = cache.Put(MakeRequest("alpha beta gamma delta"), "r", 0.5, 0.5, 10, 0.0);
  cache.Put(MakeRequest("unrelated words entirely different"), "r", 0.5, 0.5, 10, 0.0);
  const auto results = cache.FindSimilar(MakeRequest("alpha beta gamma delta"), 2);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].id, id1);
  EXPECT_GT(results[0].score, results[1].score);
}

TEST(ExampleCacheTest, ScrubModeStripsPiiBeforeIndexing) {
  ExampleCacheConfig config;
  config.admission_mode = CacheAdmissionMode::kScrub;
  ExampleCache cache(SharedEmbedder(), config);
  const uint64_t id = cache.Put(MakeRequest("reach me at a@b.com please"), "r", 0.5, 0.5, 10, 0.0);
  ASSERT_NE(id, 0u);
  EXPECT_EQ(cache.Get(id)->request.text, "reach me at [EMAIL] please");
}

TEST(ExampleCacheTest, DenyAllRejects) {
  ExampleCacheConfig config;
  config.admission_mode = CacheAdmissionMode::kDenyAll;
  ExampleCache cache(SharedEmbedder(), config);
  EXPECT_EQ(cache.Put(MakeRequest("anything"), "r", 0.5, 0.5, 10, 0.0), 0u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ExampleCacheTest, RecordAccessTracksCounts) {
  ExampleCache cache(SharedEmbedder());
  const uint64_t id = cache.Put(MakeRequest("q"), "r", 0.5, 0.5, 10, 0.0);
  cache.RecordAccess(id, 5.0);
  cache.RecordAccess(id, 9.0);
  EXPECT_EQ(cache.Get(id)->access_count, 2u);
  EXPECT_EQ(cache.Get(id)->last_access_time, 9.0);
  cache.RecordAccess(12345, 1.0);  // unknown id is a no-op
}

TEST(ExampleCacheTest, RecordOffloadAccumulatesValue) {
  ExampleCache cache(SharedEmbedder());
  const uint64_t id = cache.Put(MakeRequest("q"), "r", 0.5, 0.5, 10, 0.0);
  cache.RecordOffload(id);
  cache.RecordOffload(id, 2.0);
  EXPECT_NEAR(cache.Get(id)->offload_value, 3.0, 1e-9);
}

TEST(ExampleCacheTest, DecayTickScalesValues) {
  ExampleCacheConfig config;
  config.decay_factor = 0.9;
  ExampleCache cache(SharedEmbedder(), config);
  const uint64_t id = cache.Put(MakeRequest("q"), "r", 0.5, 0.5, 10, 0.0);
  cache.RecordOffload(id, 10.0);
  cache.DecayTick();
  EXPECT_NEAR(cache.Get(id)->offload_value, 9.0, 1e-9);
  cache.DecayTick();
  EXPECT_NEAR(cache.Get(id)->offload_value, 8.1, 1e-9);
}

TEST(ExampleCacheTest, EnforceCapacityNoopWhenUnbounded) {
  ExampleCache cache(SharedEmbedder());
  for (int i = 0; i < 20; ++i) {
    cache.Put(MakeRequest("query " + std::to_string(i)), "r", 0.5, 0.5, 100, 0.0);
  }
  EXPECT_TRUE(cache.EnforceCapacity().empty());
  EXPECT_EQ(cache.size(), 20u);
}

TEST(ExampleCacheTest, ImpossibleCapacityEvictsEverything) {
  ExampleCacheConfig config;
  config.capacity_bytes = 1;     // nothing fits
  config.high_watermark = 1e12;  // do not auto-evict inside Put
  ExampleCache cache(SharedEmbedder(), config);
  for (int i = 0; i < 10; ++i) {
    cache.Put(MakeRequest("query " + std::to_string(i)), "r", 0.5, 0.5, 50, 0.0);
  }
  EXPECT_EQ(cache.EnforceCapacity().size(), 10u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ExampleCacheTest, EvictionKeepsHighValueExamples) {
  // Budget sized for roughly half the entries: knapsack must retain the two
  // examples carrying nearly all of the offload value.
  ExampleCacheConfig probe_config;
  ExampleCache probe(SharedEmbedder(), probe_config);
  for (int i = 0; i < 10; ++i) {
    probe.Put(MakeRequest("query " + std::to_string(i)), "r", 0.5, 0.5, 50, 0.0);
  }
  const int64_t budget = probe.used_bytes() / 2;

  ExampleCacheConfig config;
  config.capacity_bytes = budget;
  config.high_watermark = 1e12;
  ExampleCache cache(SharedEmbedder(), config);
  std::vector<uint64_t> ids;
  for (int i = 0; i < 10; ++i) {
    ids.push_back(cache.Put(MakeRequest("query " + std::to_string(i)), "r", 0.5, 0.5, 50, 0.0));
  }
  cache.RecordOffload(ids[3], 100.0);
  cache.RecordOffload(ids[7], 50.0);
  cache.EnforceCapacity();
  EXPECT_LE(cache.used_bytes(), budget);
  EXPECT_NE(cache.Get(ids[3]), nullptr);  // highest value survives
  EXPECT_NE(cache.Get(ids[7]), nullptr);
}

TEST(ExampleCacheTest, PutTriggersEvictionAboveWatermark) {
  ExampleCacheConfig config;
  config.capacity_bytes = 2000;
  config.high_watermark = 1.0;
  ExampleCache cache(SharedEmbedder(), config);
  for (int i = 0; i < 50; ++i) {
    cache.Put(MakeRequest("query number " + std::to_string(i)), "r", 0.5, 0.5, 50, 0.0);
  }
  EXPECT_LE(cache.used_bytes(), 2000);
  EXPECT_LT(cache.size(), 50u);
}

TEST(ExampleCacheTest, AllIdsSortedAndComplete) {
  ExampleCache cache(SharedEmbedder());
  std::vector<uint64_t> ids;
  for (int i = 0; i < 5; ++i) {
    ids.push_back(cache.Put(MakeRequest("q" + std::to_string(i)), "r", 0.5, 0.5, 10, 0.0));
  }
  const auto all = cache.AllIds();
  EXPECT_EQ(all, ids);
}

TEST(ExampleCacheTest, IndexStaysConsistentAcrossRemovals) {
  ExampleCache cache(SharedEmbedder());
  QueryGenerator gen(GetDatasetProfile(DatasetId::kMsMarco), 51);
  std::vector<uint64_t> ids;
  for (const Request& req : gen.Generate(100)) {
    ids.push_back(cache.Put(req, "r", 0.7, 0.785, 80, 0.0));
  }
  for (size_t i = 0; i < ids.size(); i += 2) {
    cache.Remove(ids[i]);
  }
  const auto results = cache.FindSimilar(gen.Next(), 10);
  for (const auto& result : results) {
    EXPECT_NE(cache.Get(result.id), nullptr);  // no dangling index entries
  }
}

TEST(ExampleSizeBytesTest, GrowsWithTokenCounts) {
  Example small_example;
  small_example.request.text = "short";
  small_example.request.input_tokens = 10;
  small_example.response_tokens = 10;
  Example large_example;
  large_example.request.text = "short";
  large_example.request.input_tokens = 10;
  large_example.response_tokens = 1000;
  EXPECT_GT(large_example.SizeBytes(), small_example.SizeBytes());
}

}  // namespace
}  // namespace iccache
