// Concurrency coverage (runs under TSan via the `concurrency` ctest label)
// for the passive-observability contract: with tracing, the armed SLO
// watchdog, and tail-exemplar sampling all enabled, the driver's decisions
// AND its deterministic tail-exemplar set must be byte-identical across
// every {threads} x {commit lanes} combination — and identical to a run with
// the whole observability stack disabled.
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/trace.h"
#include "src/serving/driver.h"
#include "src/workload/dataset.h"

namespace iccache {
namespace {

constexpr uint64_t kSeed = 0x7a11ed;

DatasetProfile SmallProfile() {
  DatasetProfile profile = GetDatasetProfile(DatasetId::kLmsysChat);
  profile.example_pool_size = 300;
  profile.num_topics = 60;
  return profile;
}

std::vector<Request> SmallWorkload() {
  TraceConfig trace;
  trace.kind = TraceKind::kPoisson;
  trace.mean_rps = 4.0;
  trace.duration_s = 100.0;
  trace.seed = kSeed ^ 0x7ace;
  return ServingDriver::MakeWorkload(SmallProfile(), trace, kSeed ^ 0x9e4);
}

DriverConfig ObsConfig(size_t num_threads, size_t commit_lanes) {
  DriverConfig config;
  config.seed = kSeed;
  config.num_threads = num_threads;
  config.commit_lanes = commit_lanes;
  config.batch_window = 32;
  config.cache.num_shards = 4;
  config.tail_slowest_per_window = 2;
  config.tail_sample_every = 37;
  // Arm rules that stay silent on this small clean run; an armed watchdog
  // must still be a pure observer.
  config.watchdog.stage0_drop_fraction = 0.5;
  config.watchdog.maintenance_stall_rule = true;
  return config;
}

DriverReport RunOnce(const std::vector<Request>& requests, size_t num_threads,
                     size_t commit_lanes, bool observability_on) {
  ScopedTracing tracing(observability_on);
  TraceRecorder::Global().Reset();
  DriverConfig config = ObsConfig(num_threads, commit_lanes);
  if (!observability_on) {
    config.watchdog = WatchdogConfig{};
  }
  ModelCatalog catalog;
  ServingDriver driver(config, &catalog);
  QueryGenerator seeder(SmallProfile(), kSeed ^ 0x5eedb);
  for (size_t i = 0; i < 300; ++i) {
    driver.SeedExample(seeder.Next(), 0.0);
  }
  return driver.Run(requests);
}

void ExpectSameDecisionsAndTails(const DriverReport& a, const DriverReport& b) {
  ASSERT_EQ(a.decisions.size(), b.decisions.size());
  for (size_t i = 0; i < a.decisions.size(); ++i) {
    EXPECT_EQ(a.decisions[i].request_id, b.decisions[i].request_id);
    EXPECT_EQ(a.decisions[i].model_name, b.decisions[i].model_name);
    EXPECT_EQ(a.decisions[i].offloaded, b.decisions[i].offloaded);
    EXPECT_EQ(a.decisions[i].num_examples, b.decisions[i].num_examples);
    EXPECT_DOUBLE_EQ(a.decisions[i].latent_quality, b.decisions[i].latent_quality);
  }
  ASSERT_EQ(a.tail_exemplars.size(), b.tail_exemplars.size());
  for (size_t i = 0; i < a.tail_exemplars.size(); ++i) {
    EXPECT_EQ(a.tail_exemplars[i].request_id, b.tail_exemplars[i].request_id);
    EXPECT_EQ(a.tail_exemplars[i].window, b.tail_exemplars[i].window);
    EXPECT_DOUBLE_EQ(a.tail_exemplars[i].e2e_latency_s, b.tail_exemplars[i].e2e_latency_s);
    EXPECT_EQ(a.tail_exemplars[i].slowest, b.tail_exemplars[i].slowest);
  }
}

TEST(ObsTailDeterminismTest, TailExemplarsIdenticalAcrossThreadsAndLanes) {
  const std::vector<Request> requests = SmallWorkload();
  const DriverReport reference = RunOnce(requests, 1, 1, /*observability_on=*/true);

  // The sampler keyed on simulated latency must pick a nonempty set: the
  // slowest-per-window exemplars exist whenever any window completed work.
  ASSERT_FALSE(reference.tail_exemplars.empty());
  bool any_slowest = false;
  for (size_t i = 0; i < reference.tail_exemplars.size(); ++i) {
    any_slowest = any_slowest || reference.tail_exemplars[i].slowest;
    EXPECT_GT(reference.tail_exemplars[i].request_id, 0u);
    if (i > 0) {
      const TailExemplar& prev = reference.tail_exemplars[i - 1];
      const TailExemplar& cur = reference.tail_exemplars[i];
      EXPECT_TRUE(prev.window < cur.window ||
                  (prev.window == cur.window && prev.request_id < cur.request_id));
    }
  }
  EXPECT_TRUE(any_slowest);
  EXPECT_TRUE(reference.anomalies.empty());  // clean run: armed but silent

  for (const size_t threads : {1, 8}) {
    for (const size_t lanes : {1, 4}) {
      if (threads == 1 && lanes == 1) {
        continue;
      }
      const DriverReport report = RunOnce(requests, threads, lanes, true);
      ExpectSameDecisionsAndTails(reference, report);
      EXPECT_TRUE(report.anomalies.empty());
    }
  }
}

TEST(ObsTailDeterminismTest, ObservabilityOffProducesTheSameDecisions) {
  const std::vector<Request> requests = SmallWorkload();
  const DriverReport on = RunOnce(requests, 8, 4, /*observability_on=*/true);
  const DriverReport off = RunOnce(requests, 8, 4, /*observability_on=*/false);
  // Tail exemplars are selected from completions regardless of tracing, so
  // they too must match; the watchdog/tracing state is the only difference.
  ExpectSameDecisionsAndTails(on, off);
}

}  // namespace
}  // namespace iccache
