#include "src/core/retrieval_backend.h"

#include <memory>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "src/core/example_cache.h"
#include "src/core/selector.h"
#include "src/core/sharded_cache.h"
#include "src/embedding/embedder.h"

namespace iccache {
namespace {

Request MakeRequest(uint64_t id, const std::string& text) {
  Request request;
  request.id = id;
  request.text = text;
  request.input_tokens = static_cast<int>(text.size() / 4 + 1);
  return request;
}

TEST(RetrievalBackendTest, KindNameRoundTrip) {
  for (RetrievalBackendKind kind : {RetrievalBackendKind::kFlat, RetrievalBackendKind::kKMeans,
                                    RetrievalBackendKind::kHnsw}) {
    RetrievalBackendKind parsed;
    ASSERT_TRUE(ParseRetrievalBackendKind(RetrievalBackendKindName(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  RetrievalBackendKind parsed = RetrievalBackendKind::kFlat;
  EXPECT_FALSE(ParseRetrievalBackendKind("faiss", &parsed));
  EXPECT_EQ(parsed, RetrievalBackendKind::kFlat);  // untouched on failure
}

TEST(RetrievalBackendTest, FactoryBuildsEachKind) {
  RetrievalBackendConfig config;
  config.kind = RetrievalBackendKind::kFlat;
  auto flat = MakeRetrievalIndex(config, 8, 1);
  ASSERT_NE(flat, nullptr);
  EXPECT_NE(dynamic_cast<FlatIndex*>(flat.get()), nullptr);

  config.kind = RetrievalBackendKind::kKMeans;
  auto kmeans = MakeRetrievalIndex(config, 8, 1);
  EXPECT_NE(dynamic_cast<KMeansIndex*>(kmeans.get()), nullptr);

  config.kind = RetrievalBackendKind::kHnsw;
  config.hnsw.max_neighbors = 12;
  auto hnsw = MakeRetrievalIndex(config, 8, 7);
  auto* as_hnsw = dynamic_cast<HnswIndex*>(hnsw.get());
  ASSERT_NE(as_hnsw, nullptr);
  // Factory overrides dim/seed, preserves tuning knobs.
  EXPECT_EQ(as_hnsw->config().dim, 8u);
  EXPECT_EQ(as_hnsw->config().seed, 7u);
  EXPECT_EQ(as_hnsw->config().max_neighbors, 12u);
}

class BackendSweep : public ::testing::TestWithParam<RetrievalBackendKind> {};

// The cache behaves identically (same store/lookup contract) under every
// backend; approximate backends may rank differently, but a near-duplicate
// query must always surface its source example.
TEST_P(BackendSweep, ExampleCacheFindsNearDuplicates) {
  ExampleCacheConfig config;
  config.retrieval.kind = GetParam();
  ExampleCache cache(std::make_shared<HashingEmbedder>(), config);

  std::vector<uint64_t> ids;
  std::vector<std::string> texts;
  for (int i = 0; i < 200; ++i) {
    texts.push_back("how do i sort a list of " + std::to_string(i) + " items in python");
    const uint64_t id =
        cache.Put(MakeRequest(static_cast<uint64_t>(i + 1), texts.back()), "resp", 0.8, 0.9, 16,
                  0.0);
    ASSERT_NE(id, 0u);
    ids.push_back(id);
  }
  int hits = 0;
  for (size_t i = 0; i < ids.size(); ++i) {
    const auto results = cache.FindSimilar(MakeRequest(9999, texts[i]), 1);
    if (!results.empty() && results[0].id == ids[i]) {
      ++hits;
    }
  }
  EXPECT_GE(hits, 195) << "backend " << RetrievalBackendKindName(GetParam());
}

TEST_P(BackendSweep, RemoveDropsFromRetrieval) {
  ExampleCacheConfig config;
  config.retrieval.kind = GetParam();
  ExampleCache cache(std::make_shared<HashingEmbedder>(), config);
  std::vector<uint64_t> ids;
  for (int i = 0; i < 120; ++i) {
    ids.push_back(cache.Put(
        MakeRequest(static_cast<uint64_t>(i + 1), "question about topic " + std::to_string(i)),
        "resp", 0.8, 0.9, 16, 0.0));
  }
  for (size_t i = 0; i < ids.size(); i += 2) {
    ASSERT_TRUE(cache.Remove(ids[i]));
  }
  const auto results =
      cache.FindSimilar(MakeRequest(9999, "question about topic 4"), cache.size());
  for (const auto& result : results) {
    Example example;
    EXPECT_TRUE(cache.Snapshot(result.id, &example)) << "stale id " << result.id;
  }
}

// The full selection pipeline runs unchanged over the sharded cache with any
// backend — the ExampleStore unification the driver relies on.
TEST_P(BackendSweep, SelectorRunsOverShardedCache) {
  ShardedCacheConfig config;
  config.num_shards = 4;
  config.cache.retrieval.kind = GetParam();
  ShardedExampleCache cache(std::make_shared<HashingEmbedder>(), config);
  ProxyUtilityModel proxy;
  ExampleSelector selector(&cache, &proxy);

  for (int i = 0; i < 150; ++i) {
    cache.Put(MakeRequest(static_cast<uint64_t>(i + 1),
                          "explain recursion with example number " + std::to_string(i % 10)),
              "resp", 0.9, 0.95, 16, 0.0);
  }
  ModelCatalog catalog;
  const ModelProfile& model = catalog.Get("gemma-2-2b");
  size_t total_selected = 0;
  for (int q = 0; q < 20; ++q) {
    const Request request =
        MakeRequest(static_cast<uint64_t>(1000 + q),
                    "explain recursion with example number " + std::to_string(q % 10));
    const auto selected = selector.Select(request, model, 0.0);
    EXPECT_LE(selected.size(), selector.config().max_examples);
    for (const auto& sel : selected) {
      Example example;
      EXPECT_TRUE(cache.Snapshot(sel.example_id, &example));
      EXPECT_GE(sel.similarity, selector.config().stage1_min_similarity);
    }
    total_selected += selected.size();
  }
  EXPECT_GT(total_selected, 0u);
}

INSTANTIATE_TEST_SUITE_P(Kinds, BackendSweep,
                         ::testing::Values(RetrievalBackendKind::kFlat,
                                           RetrievalBackendKind::kKMeans,
                                           RetrievalBackendKind::kHnsw),
                         [](const ::testing::TestParamInfo<RetrievalBackendKind>& info) {
                           return RetrievalBackendKindName(info.param);
                         });

}  // namespace
}  // namespace iccache
