// Unit coverage for per-request timeline assembly and tail attribution:
// stitching synthetic span streams into RequestTimelines, graceful
// degradation when a ring dropped a phase, the p99-vs-p50 cohort math, the
// window-parent integrity lint, and the Chrome-trace round trip that feeds
// tools/tail_report and trace_dump --request.
#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/export.h"
#include "src/obs/timeline.h"
#include "src/obs/trace.h"

namespace iccache {
namespace {

TimelineSpan MakeSpan(const std::string& name, uint64_t request_id, uint64_t begin_ns,
                      uint64_t end_ns, uint32_t lane = 0) {
  TimelineSpan span;
  span.name = name;
  span.request_id = request_id;
  span.begin_ns = begin_ns;
  span.end_ns = end_ns;
  span.lane = lane;
  return span;
}

// One request's complete life: prepare with all four instrumented children,
// a commit lane with route + generate, and a merge step.
std::vector<TimelineSpan> FullRequestSpans(uint64_t id, uint64_t base_ns = 0) {
  return {
      MakeSpan("prepare", id, base_ns + 1000, base_ns + 5000),
      MakeSpan("embed", id, base_ns + 1100, base_ns + 1600),
      MakeSpan("stage0_probe", id, base_ns + 1700, base_ns + 1900),
      MakeSpan("stage1_retrieval", id, base_ns + 2000, base_ns + 3000),
      MakeSpan("stage2_scoring", id, base_ns + 3100, base_ns + 4000),
      MakeSpan("lane_commit", id, base_ns + 6000, base_ns + 9000, /*lane=*/2),
      MakeSpan("route", id, base_ns + 6100, base_ns + 6300),
      MakeSpan("generate", id, base_ns + 6500, base_ns + 8500),
      MakeSpan("merge_step", id, base_ns + 9500, base_ns + 9800),
  };
}

uint64_t Stage(const RequestTimeline& timeline, TimelineStage stage) {
  return timeline.stage_ns[static_cast<size_t>(stage)];
}

TEST(TimelineAssemblyTest, FullRequestDecomposesIntoAllStages) {
  const std::vector<RequestTimeline> timelines = AssembleTimelines(FullRequestSpans(7));
  ASSERT_EQ(timelines.size(), 1u);
  const RequestTimeline& t = timelines[0];
  EXPECT_EQ(t.request_id, 7u);
  EXPECT_EQ(t.lane, 2u);
  EXPECT_TRUE(t.has_prepare);
  EXPECT_TRUE(t.has_lane);
  EXPECT_TRUE(t.has_merge);
  EXPECT_EQ(t.begin_ns, 1000u);
  EXPECT_EQ(t.end_ns, 9800u);
  EXPECT_EQ(t.total_ns(), 8800u);

  EXPECT_EQ(Stage(t, TimelineStage::kEmbed), 500u);
  EXPECT_EQ(Stage(t, TimelineStage::kStage0Probe), 200u);
  EXPECT_EQ(Stage(t, TimelineStage::kStage1), 1000u);
  EXPECT_EQ(Stage(t, TimelineStage::kStage2), 900u);
  // prepare is 4000 ns; children cover 2600, so 1400 is prepare self time.
  EXPECT_EQ(Stage(t, TimelineStage::kPrepareOther), 1400u);
  EXPECT_EQ(Stage(t, TimelineStage::kLaneWait), 1000u);
  EXPECT_EQ(Stage(t, TimelineStage::kRoute), 200u);
  EXPECT_EQ(Stage(t, TimelineStage::kGenerate), 2000u);
  EXPECT_EQ(Stage(t, TimelineStage::kLaneOther), 800u);
  EXPECT_EQ(Stage(t, TimelineStage::kMergeWait), 500u);
  EXPECT_EQ(Stage(t, TimelineStage::kMerge), 300u);

  // Every nanosecond of the request's wall time lands in a named stage.
  EXPECT_EQ(t.attributed_ns(), t.total_ns());
  EXPECT_DOUBLE_EQ(t.attribution_fraction(), 1.0);
}

TEST(TimelineAssemblyTest, SpanOrderDoesNotMatter) {
  // Rings from different threads interleave arbitrarily; assembly must be a
  // pure function of the span set.
  std::vector<TimelineSpan> spans = FullRequestSpans(3);
  std::mt19937 shuffle_rng(1234);
  for (int trial = 0; trial < 5; ++trial) {
    std::shuffle(spans.begin(), spans.end(), shuffle_rng);
    const std::vector<RequestTimeline> timelines = AssembleTimelines(spans);
    ASSERT_EQ(timelines.size(), 1u);
    EXPECT_EQ(timelines[0].total_ns(), 8800u);
    EXPECT_EQ(timelines[0].attributed_ns(), 8800u);
  }
}

TEST(TimelineAssemblyTest, DroppedPrepareShrinksTheTimeline) {
  // A wrapped ring lost the prepare phase: the timeline must degrade to the
  // surviving phases without fabricating a lane_wait against missing data.
  std::vector<TimelineSpan> spans = {
      MakeSpan("lane_commit", 9, 6000, 9000, /*lane=*/1),
      MakeSpan("generate", 9, 6500, 8500),
      MakeSpan("merge_step", 9, 9500, 9800),
  };
  const std::vector<RequestTimeline> timelines = AssembleTimelines(spans);
  ASSERT_EQ(timelines.size(), 1u);
  const RequestTimeline& t = timelines[0];
  EXPECT_FALSE(t.has_prepare);
  EXPECT_TRUE(t.has_lane);
  EXPECT_TRUE(t.has_merge);
  EXPECT_EQ(t.begin_ns, 6000u);
  EXPECT_EQ(t.end_ns, 9800u);
  EXPECT_EQ(Stage(t, TimelineStage::kLaneWait), 0u);
  EXPECT_EQ(Stage(t, TimelineStage::kEmbed), 0u);
  EXPECT_EQ(Stage(t, TimelineStage::kGenerate), 2000u);
  EXPECT_EQ(Stage(t, TimelineStage::kMergeWait), 500u);
}

TEST(TimelineAssemblyTest, RequestlessAndChildOnlySpansProduceNoTimeline) {
  std::vector<TimelineSpan> spans = {
      MakeSpan("window", 0, 0, 100000),     // driver-scoped, request_id 0
      MakeSpan("embed", 5, 1100, 1600),     // child with no surviving phase
  };
  EXPECT_TRUE(AssembleTimelines(spans).empty());
}

TEST(TimelineAssemblyTest, ResultIsSortedByRequestId) {
  std::vector<TimelineSpan> spans;
  for (uint64_t id : {42u, 7u, 19u}) {
    const auto request = FullRequestSpans(id, id * 100000);
    spans.insert(spans.end(), request.begin(), request.end());
  }
  const std::vector<RequestTimeline> timelines = AssembleTimelines(spans);
  ASSERT_EQ(timelines.size(), 3u);
  EXPECT_EQ(timelines[0].request_id, 7u);
  EXPECT_EQ(timelines[1].request_id, 19u);
  EXPECT_EQ(timelines[2].request_id, 42u);
}

TEST(TailAttributionTest, CohortsAndAttributionFraction) {
  // 100 requests with distinct totals 1..100 ms, fully attributed to
  // generate except the slowest one, which has 1 ms unattributed.
  std::vector<RequestTimeline> timelines;
  for (uint64_t i = 1; i <= 100; ++i) {
    RequestTimeline t;
    t.request_id = i;
    t.begin_ns = 0;
    t.end_ns = i * 1000000;
    const uint64_t attributed = i == 100 ? (i - 1) * 1000000 : i * 1000000;
    t.stage_ns[static_cast<size_t>(TimelineStage::kGenerate)] = attributed;
    timelines.push_back(t);
  }
  const TailAttribution attribution = AttributeTails(timelines);
  EXPECT_EQ(attribution.requests, 100u);
  // Nearest rank: p99 = 99th smallest = 99 ms, p50 = 50th smallest = 50 ms.
  EXPECT_DOUBLE_EQ(attribution.p99_total_ms, 99.0);
  EXPECT_DOUBLE_EQ(attribution.p50_total_ms, 50.0);
  EXPECT_EQ(attribution.tail_count, 2u);      // totals 99 and 100 ms
  EXPECT_EQ(attribution.typical_count, 50u);  // totals 1..50 ms
  // Tail cohort: 199 ms of wall, 198 ms attributed.
  EXPECT_NEAR(attribution.tail_attribution_fraction, 198.0 / 199.0, 1e-12);
  EXPECT_NEAR(attribution.tail_stage_ms[static_cast<size_t>(TimelineStage::kGenerate)],
              (99.0 + 99.0) / 2.0, 1e-9);
  const std::string rendered = RenderTailAttribution(attribution);
  EXPECT_NE(rendered.find("tail attribution:"), std::string::npos);
  EXPECT_NE(rendered.find("generate"), std::string::npos);
}

TEST(TailAttributionTest, EmptyInputIsWellDefined) {
  const TailAttribution attribution = AttributeTails({});
  EXPECT_EQ(attribution.requests, 0u);
  EXPECT_DOUBLE_EQ(attribution.tail_attribution_fraction, 0.0);
}

TEST(TraceIntegrityTest, WindowScopedSpansMustOverlapAWindow) {
  std::vector<TimelineSpan> spans = {
      MakeSpan("window", 0, 0, 10000),
      MakeSpan("lane_commit", 1, 2000, 4000),
      MakeSpan("merge", 0, 9000, 9900),
  };
  std::string error;
  EXPECT_TRUE(CheckTraceIntegrity(spans, &error)) << error;

  // A merge_step past every window is an exporter/recorder bug.
  spans.push_back(MakeSpan("merge_step", 5, 20000, 21000));
  EXPECT_FALSE(CheckTraceIntegrity(spans, &error));
  EXPECT_NE(error.find("merge_step"), std::string::npos);
}

TEST(TraceIntegrityTest, LaneSpanWithNoWindowsAtAllFails) {
  std::vector<TimelineSpan> spans = {MakeSpan("lane_commit", 1, 2000, 4000)};
  std::string error;
  EXPECT_FALSE(CheckTraceIntegrity(spans, &error));
  // Spans outside the window-scoped set never need a parent.
  EXPECT_TRUE(CheckTraceIntegrity({MakeSpan("prepare", 1, 0, 100)}, &error));
  EXPECT_TRUE(CheckTraceIntegrity({}, &error));
}

TEST(TimelineChromeRoundTripTest, SnapshotAndParsedTraceAssembleIdentically) {
  // The same events, read two ways: flattened straight from a recorder
  // snapshot, and round-tripped through the Chrome JSON exporter + parser.
  // The fixed-microsecond timestamp format must keep nanosecond exactness.
  TraceRecorder recorder(/*ring_capacity=*/64);
  const struct {
    TraceCategory category;
    uint64_t request_id;
    uint64_t begin_ns;
    uint64_t end_ns;
    uint32_t lane;
  } events[] = {
      {TraceCategory::kWindow, 0, 0, 50000, 0},
      {TraceCategory::kPrepare, 11, 1000, 5000, 0},
      {TraceCategory::kEmbed, 11, 1001, 2003, 0},
      {TraceCategory::kLaneCommit, 11, 6007, 9001, 3},
      {TraceCategory::kMergeStep, 11, 9500, 9807, 0},
  };
  for (const auto& spec : events) {
    TraceEvent event;
    event.category = spec.category;
    event.request_id = spec.request_id;
    event.begin_ns = spec.begin_ns;
    event.end_ns = spec.end_ns;
    event.lane = spec.lane;
    recorder.Emit(event);
  }
  const TraceRecorder::Snapshot snapshot = recorder.TakeSnapshot();
  const std::vector<TimelineSpan> direct = FlattenSnapshot(snapshot);

  std::vector<TimelineSpan> parsed;
  std::string error;
  ASSERT_TRUE(ParseChromeTraceSpans(ChromeTraceJson(snapshot, {}), &parsed, &error))
      << error;
  ASSERT_EQ(parsed.size(), direct.size());
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(parsed[i].name, direct[i].name);
    EXPECT_EQ(parsed[i].request_id, direct[i].request_id);
    EXPECT_EQ(parsed[i].begin_ns, direct[i].begin_ns);
    EXPECT_EQ(parsed[i].end_ns, direct[i].end_ns);
    EXPECT_EQ(parsed[i].lane, direct[i].lane);
  }

  const std::vector<RequestTimeline> a = AssembleTimelines(direct);
  const std::vector<RequestTimeline> b = AssembleTimelines(parsed);
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(a[0].total_ns(), b[0].total_ns());
  EXPECT_EQ(a[0].attributed_ns(), b[0].attributed_ns());
  EXPECT_TRUE(CheckTraceIntegrity(parsed, &error)) << error;
}

TEST(TimelineRenderTest, RequestTimelineRendersPhasesAndDrops) {
  const std::vector<RequestTimeline> timelines = AssembleTimelines({
      MakeSpan("lane_commit", 4, 6000, 9000, /*lane=*/1),
      MakeSpan("generate", 4, 6500, 8500),
  });
  ASSERT_EQ(timelines.size(), 1u);
  const std::string rendered = RenderRequestTimeline(timelines[0]);
  EXPECT_NE(rendered.find("request 4"), std::string::npos);
  EXPECT_NE(rendered.find("[prepare dropped]"), std::string::npos);
  EXPECT_NE(rendered.find("generate"), std::string::npos);
}

}  // namespace
}  // namespace iccache
