#include "src/core/bandit.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/mathutil.h"
#include "src/common/stats.h"

namespace iccache {
namespace {

TEST(LinearThompsonArmTest, PriorMeanIsZero) {
  LinearThompsonArm arm(3);
  EXPECT_NEAR(arm.MeanScore({1.0, 0.5, -0.5}), 0.0, 1e-9);
}

TEST(LinearThompsonArmTest, LearnsLinearRewardFunction) {
  // Reward = 2*x0 - 1*x1; posterior mean must recover the weights.
  LinearThompsonArm arm(2, /*prior_precision=*/0.1);
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const std::vector<double> x = {rng.Uniform(), rng.Uniform()};
    arm.Update(x, 2.0 * x[0] - 1.0 * x[1] + rng.Normal(0.0, 0.05));
  }
  EXPECT_NEAR(arm.MeanScore({1.0, 0.0}), 2.0, 0.1);
  EXPECT_NEAR(arm.MeanScore({0.0, 1.0}), -1.0, 0.1);
}

TEST(LinearThompsonArmTest, PosteriorConcentratesWithData) {
  LinearThompsonArm arm(2, 1.0, 0.04);
  Rng rng(2);
  const std::vector<double> x = {1.0, 0.5};
  auto sample_spread = [&]() {
    RunningStat stat;
    for (int i = 0; i < 200; ++i) {
      stat.Add(arm.SampleScore(x, rng));
    }
    return stat.stddev();
  };
  const double before = sample_spread();
  for (int i = 0; i < 500; ++i) {
    arm.Update(x, 1.0);
  }
  const double after = sample_spread();
  EXPECT_LT(after, before * 0.2);
}

TEST(LinearThompsonArmTest, SamplesCenterOnPosteriorMean) {
  LinearThompsonArm arm(2, 1.0);
  Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    const std::vector<double> x = {rng.Uniform(), 1.0};
    arm.Update(x, x[0]);
  }
  const std::vector<double> probe = {0.5, 1.0};
  RunningStat samples;
  for (int i = 0; i < 500; ++i) {
    samples.Add(arm.SampleScore(probe, rng));
  }
  EXPECT_NEAR(samples.mean(), arm.MeanScore(probe), 0.05);
}

TEST(LinearThompsonArmTest, ShortContextTreatedAsZeroPadded) {
  LinearThompsonArm arm(4);
  arm.Update({1.0, 1.0}, 1.0);  // missing trailing features
  EXPECT_NO_FATAL_FAILURE(arm.MeanScore({1.0}));
}

TEST(BetaBernoulliArmTest, UpdateMathAndMean) {
  BetaBernoulliArm arm;
  EXPECT_NEAR(arm.Mean(), 0.5, 1e-9);
  arm.Update(true);
  arm.Update(true);
  arm.Update(false);
  EXPECT_NEAR(arm.alpha(), 3.0, 1e-9);
  EXPECT_NEAR(arm.beta(), 2.0, 1e-9);
  EXPECT_NEAR(arm.Mean(), 0.6, 1e-9);
}

TEST(BetaBernoulliArmTest, SamplesWithinUnitInterval) {
  BetaBernoulliArm arm(2.0, 5.0);
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    const double s = arm.Sample(rng);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(BetaBernoulliArmTest, ThompsonIdentifiesBestArm) {
  // Appendix A.2 / Theorem 1: with enough rounds, the empirically best arm
  // is selected with high probability.
  const std::vector<double> true_rates = {0.3, 0.5, 0.7};
  std::vector<BetaBernoulliArm> arms(3);
  Rng rng(5);
  std::vector<int> pulls(3, 0);
  for (int t = 0; t < 3000; ++t) {
    size_t best = 0;
    double best_sample = -1.0;
    for (size_t i = 0; i < arms.size(); ++i) {
      const double s = arms[i].Sample(rng);
      if (s > best_sample) {
        best_sample = s;
        best = i;
      }
    }
    ++pulls[best];
    arms[best].Update(rng.Bernoulli(true_rates[best]));
  }
  EXPECT_GT(pulls[2], pulls[0] * 4);
  EXPECT_GT(pulls[2], pulls[1] * 2);
  EXPECT_GT(arms[2].Mean(), arms[0].Mean());
}

TEST(BetaBernoulliArmTest, RegretRateDecreases) {
  // Average per-round regret over the second half must be far below the
  // first half (Theorem 1's T^-C failure decay implies sublinear regret).
  const std::vector<double> true_rates = {0.35, 0.65};
  std::vector<BetaBernoulliArm> arms(2);
  Rng rng(6);
  double first_half_regret = 0.0;
  double second_half_regret = 0.0;
  const int horizon = 4000;
  for (int t = 0; t < horizon; ++t) {
    const size_t chosen = arms[0].Sample(rng) > arms[1].Sample(rng) ? 0 : 1;
    const double regret = 0.65 - true_rates[chosen];
    if (t < horizon / 2) {
      first_half_regret += regret;
    } else {
      second_half_regret += regret;
    }
    arms[chosen].Update(rng.Bernoulli(true_rates[chosen]));
  }
  EXPECT_LT(second_half_regret, first_half_regret * 0.5);
}

TEST(ContextualBanditTest, SelectionFieldsPopulated) {
  ContextualBandit bandit(3, 4, 7);
  const BanditSelection sel = bandit.Select({1.0, 0.5, 0.0, 0.2}, {});
  EXPECT_LT(sel.arm, 3u);
  EXPECT_EQ(sel.sampled_scores.size(), 3u);
  EXPECT_EQ(sel.mean_scores.size(), 3u);
  EXPECT_EQ(sel.confidence.size(), 3u);
  EXPECT_NE(sel.second_choice, sel.arm);
  double prob_sum = 0.0;
  for (double p : sel.confidence) {
    prob_sum += p;
  }
  EXPECT_NEAR(prob_sum, 1.0, 1e-9);
}

TEST(ContextualBanditTest, LearnsContextDependentPolicy) {
  // Arm 0 is best when x1 is low; arm 1 when x1 is high.
  ContextualBandit bandit(2, 2, 8);
  Rng rng(9);
  for (int t = 0; t < 3000; ++t) {
    const double x1 = rng.Uniform();
    const std::vector<double> context = {1.0, x1};
    const BanditSelection sel = bandit.Select(context, {});
    const double reward = sel.arm == 0 ? (1.0 - x1) : x1;
    bandit.Update(sel.arm, context, reward + rng.Normal(0.0, 0.05));
  }
  int correct = 0;
  for (int i = 0; i < 200; ++i) {
    const double x1 = (i % 2 == 0) ? 0.05 : 0.95;
    const BanditSelection sel = bandit.Select({1.0, x1}, {});
    const size_t ideal = x1 > 0.5 ? 1u : 0u;
    correct += (sel.arm == ideal) ? 1 : 0;
  }
  EXPECT_GT(correct, 160);
}

TEST(ContextualBanditTest, BiasShiftsSelection) {
  ContextualBandit bandit(2, 2, 10);
  // Train arm 1 to be mildly better everywhere.
  Rng rng(11);
  for (int t = 0; t < 500; ++t) {
    const std::vector<double> context = {1.0, rng.Uniform()};
    bandit.Update(0, context, 0.5);
    bandit.Update(1, context, 0.6);
  }
  int arm1_no_bias = 0;
  int arm1_with_bias = 0;
  for (int i = 0; i < 300; ++i) {
    const std::vector<double> context = {1.0, 0.5};
    arm1_no_bias += bandit.Select(context, {}).arm == 1 ? 1 : 0;
    arm1_with_bias += bandit.Select(context, {0.0, -2.0}).arm == 1 ? 1 : 0;
  }
  EXPECT_GT(arm1_no_bias, 250);
  EXPECT_LT(arm1_with_bias, 50);
}

TEST(ContextualBanditTest, ConfidenceStdLowWhenArmsLookAlike) {
  ContextualBandit bandit(2, 2, 12);
  const BanditSelection fresh = bandit.Select({1.0, 0.5}, {});
  // Untrained arms have identical (zero) means: near-uniform confidence.
  EXPECT_LT(fresh.confidence_std, 0.05);

  Rng rng(13);
  for (int t = 0; t < 500; ++t) {
    const std::vector<double> context = {1.0, rng.Uniform()};
    bandit.Update(0, context, 0.1);
    bandit.Update(1, context, 0.9);
  }
  const BanditSelection trained = bandit.Select({1.0, 0.5}, {});
  EXPECT_GT(trained.confidence_std, 0.2);
}

TEST(Theorem4Test, CheapArmWinsAsLoadGrowsUnbounded) {
  // Theorem 4: with scores S_i = mu_i - lambda0 * tanh(gamma L) * C_i and a
  // softmax policy, the selection probability of the cheapest arm tends to 1
  // as L -> infinity (for sufficiently large lambda0).
  const std::vector<double> mu = {0.8, 0.6};    // arm 0 better but...
  const std::vector<double> cost = {1.0, 0.1};  // ...10x more expensive
  const double lambda0 = 1.5;
  const double gamma = 2.0;
  auto cheap_probability = [&](double load) {
    std::vector<double> scores(2);
    for (size_t i = 0; i < 2; ++i) {
      scores[i] = mu[i] - lambda0 * std::tanh(gamma * load) * cost[i];
    }
    return Softmax(scores, 0.05)[1];
  };
  EXPECT_LT(cheap_probability(0.0), 0.5);   // quality wins at no load
  EXPECT_GT(cheap_probability(2.0), 0.9);
  EXPECT_GT(cheap_probability(100.0), 0.99);
  // Monotone pressure toward the cheap arm.
  double prev = cheap_probability(0.0);
  for (double load = 0.25; load <= 4.0; load += 0.25) {
    const double p = cheap_probability(load);
    EXPECT_GE(p, prev - 1e-9);
    prev = p;
  }
}

class BanditArmCountSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(BanditArmCountSweep, SelectAlwaysReturnsValidArm) {
  ContextualBandit bandit(GetParam(), 3, 21);
  for (int i = 0; i < 50; ++i) {
    const BanditSelection sel = bandit.Select({1.0, 0.2, 0.8}, {});
    EXPECT_LT(sel.arm, GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(ArmCounts, BanditArmCountSweep, ::testing::Values(1u, 2u, 3u, 5u, 8u));

}  // namespace
}  // namespace iccache
