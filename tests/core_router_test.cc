#include "src/core/router.h"

#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace iccache {
namespace {

std::vector<RouterArmSpec> TwoArms() {
  RouterArmSpec small;
  small.model_name = "small";
  small.normalized_cost = 0.1;
  small.uses_examples = true;
  RouterArmSpec large;
  large.model_name = "large";
  large.normalized_cost = 1.0;
  large.uses_examples = false;
  return {small, large};
}

Request MakeRequest(uint64_t id, double difficulty) {
  Request req;
  req.id = id;
  req.difficulty = difficulty;
  req.input_tokens = 64;
  req.target_output_tokens = 128;
  return req;
}

std::vector<SelectedExample> StrongExamples(size_t n) {
  std::vector<SelectedExample> examples;
  for (size_t i = 0; i < n; ++i) {
    SelectedExample ex;
    ex.example_id = i + 1;
    ex.similarity = 0.92;
    ex.predicted_utility = 0.8;
    examples.push_back(ex);
  }
  return examples;
}

TEST(RouterContextTest, FeatureVectorShape) {
  const Request req = MakeRequest(1, 0.5);
  const auto context = RequestRouter::MakeContext(req, StrongExamples(3));
  ASSERT_EQ(context.size(), RequestRouter::kContextDim);
  EXPECT_EQ(context[0], 1.0);
  EXPECT_NEAR(context[1], 3.0 / 5.0, 1e-9);
  EXPECT_NEAR(context[2], 2.4 / 3.0, 1e-9);
  EXPECT_NEAR(context[3], 0.92, 1e-9);
}

TEST(RouterContextTest, NoExamplesZeroesExampleFeatures) {
  const auto context = RequestRouter::MakeContext(MakeRequest(1, 0.5), {});
  EXPECT_EQ(context[1], 0.0);
  EXPECT_EQ(context[2], 0.0);
  EXPECT_EQ(context[3], 0.0);
}

TEST(RequestRouterTest, DecisionFieldsPopulated) {
  RequestRouter router(TwoArms());
  const RouteDecision decision = router.Route(MakeRequest(1, 0.5), StrongExamples(2));
  EXPECT_LT(decision.arm, 2u);
  EXPECT_FALSE(decision.model_name.empty());
  EXPECT_EQ(decision.context.size(), RequestRouter::kContextDim);
  EXPECT_EQ(decision.arm_means.size(), 2u);
  EXPECT_NE(decision.second_choice, decision.arm);
}

TEST(RequestRouterTest, LoadEmaTracksObservations) {
  RouterConfig config;
  config.load_ema_alpha = 0.5;
  RequestRouter router(TwoArms(), config);
  router.ObserveLoad(1.0);
  EXPECT_NEAR(router.load_ema(), 1.0, 1e-9);
  router.ObserveLoad(0.0);
  EXPECT_NEAR(router.load_ema(), 0.5, 1e-9);
}

TEST(RequestRouterTest, LearnsToOffloadWhenSmallMatchesQuality) {
  // When observed rewards show the example-augmented small arm matching the
  // large arm, the standing cost preference must tip traffic to small.
  RequestRouter router(TwoArms());
  Rng rng(31);
  for (int t = 0; t < 1500; ++t) {
    const Request req = MakeRequest(t, rng.Uniform());
    const RouteDecision decision = router.Route(req, StrongExamples(3));
    const double reward = 0.8 + rng.Normal(0.0, 0.03);  // both arms equal
    router.UpdateReward(decision, reward);
  }
  int offloads = 0;
  for (int i = 0; i < 200; ++i) {
    const RouteDecision decision = router.Route(MakeRequest(10000 + i, 0.5), StrongExamples(3));
    offloads += decision.uses_examples ? 1 : 0;
    router.UpdateReward(decision, 0.8);
  }
  EXPECT_GT(offloads, 120);
}

TEST(RequestRouterTest, RoutesHardBareRequestsToLarge) {
  // Quality feedback: the small arm fails without examples on hard requests;
  // the router must learn to send those to the large arm.
  RequestRouter router(TwoArms());
  Rng rng(32);
  for (int t = 0; t < 2500; ++t) {
    const bool has_examples = rng.Bernoulli(0.5);
    const Request req = MakeRequest(t, 0.8);
    const auto examples = has_examples ? StrongExamples(3) : std::vector<SelectedExample>{};
    const RouteDecision decision = router.Route(req, examples);
    double reward = 0.0;
    if (decision.uses_examples) {
      reward = has_examples ? 0.75 : 0.25;  // bare small model fails
    } else {
      reward = 0.8;
    }
    router.UpdateReward(decision, reward + rng.Normal(0.0, 0.03));
  }
  int to_large_bare = 0;
  for (int i = 0; i < 200; ++i) {
    const RouteDecision decision = router.Route(MakeRequest(50000 + i, 0.8), {});
    to_large_bare += decision.uses_examples ? 0 : 1;
    router.UpdateReward(decision, decision.uses_examples ? 0.25 : 0.8);
  }
  EXPECT_GT(to_large_bare, 140);
}

TEST(RequestRouterTest, OverloadBiasForcesOffload) {
  // Train the router to prefer the large arm on quality, then saturate the
  // load signal: the tanh bias must flip traffic to the cheap arm.
  RouterConfig config;
  config.load_threshold = 0.75;
  config.bias_lambda = 2.0;
  RequestRouter router(TwoArms(), config);
  Rng rng(33);
  for (int t = 0; t < 1000; ++t) {
    const Request req = MakeRequest(t, 0.6);
    const RouteDecision decision = router.Route(req, StrongExamples(2));
    router.UpdateReward(decision, decision.uses_examples ? 0.5 : 0.9);
  }
  // Below threshold: quality wins, most traffic to large.
  router.ObserveLoad(0.2);
  int to_large = 0;
  for (int i = 0; i < 100; ++i) {
    to_large += router.Route(MakeRequest(90000 + i, 0.6), StrongExamples(2)).uses_examples ? 0 : 1;
  }
  EXPECT_GT(to_large, 60);

  // Saturated overload: the bias must push nearly all traffic to small.
  for (int i = 0; i < 50; ++i) {
    router.ObserveLoad(3.0);
  }
  int to_small = 0;
  for (int i = 0; i < 100; ++i) {
    const RouteDecision decision = router.Route(MakeRequest(95000 + i, 0.6), StrongExamples(2));
    to_small += decision.uses_examples ? 1 : 0;
    EXPECT_GT(decision.overload_bias_magnitude, 0.5);  // auto-scaling signal
  }
  EXPECT_GT(to_small, 85);
}

TEST(RequestRouterTest, NoOverloadBiasBelowThreshold) {
  RequestRouter router(TwoArms());
  router.ObserveLoad(0.1);
  const RouteDecision decision = router.Route(MakeRequest(1, 0.5), {});
  EXPECT_EQ(decision.overload_bias_magnitude, 0.0);
}

TEST(RequestRouterTest, UncertaintyGateSolicitsFeedbackWhenFresh) {
  // An untrained router has near-identical arm means -> solicit.
  RequestRouter router(TwoArms());
  const RouteDecision fresh = router.Route(MakeRequest(1, 0.5), {});
  EXPECT_TRUE(fresh.solicit_feedback);

  // After decisive training the gate must close.
  Rng rng(34);
  for (int t = 0; t < 800; ++t) {
    const Request req = MakeRequest(t, rng.Uniform());
    const RouteDecision decision = router.Route(req, {});
    router.UpdateReward(decision, decision.uses_examples ? 0.1 : 0.9);
  }
  int solicited = 0;
  for (int i = 0; i < 100; ++i) {
    solicited += router.Route(MakeRequest(70000 + i, 0.5), {}).solicit_feedback ? 1 : 0;
  }
  EXPECT_LT(solicited, 30);
}

TEST(RequestRouterTest, PreferenceUpdateShiftsArmMeans) {
  RequestRouter router(TwoArms());
  const Request req = MakeRequest(1, 0.5);
  const RouteDecision decision = router.Route(req, StrongExamples(2));
  const double mean_before = decision.arm_means[decision.arm];
  for (int i = 0; i < 100; ++i) {
    router.UpdatePreference(decision, /*top_choice_won=*/true);
  }
  const RouteDecision after = router.Route(req, StrongExamples(2));
  EXPECT_GT(after.arm_means[decision.arm], mean_before);
}

TEST(RequestRouterTest, SingleArmDegenerate) {
  RouterArmSpec only;
  only.model_name = "only";
  only.normalized_cost = 0.5;
  only.uses_examples = true;
  RequestRouter router({only});
  const RouteDecision decision = router.Route(MakeRequest(1, 0.5), {});
  EXPECT_EQ(decision.arm, 0u);
  EXPECT_EQ(decision.model_name, "only");
}

}  // namespace
}  // namespace iccache
