// Concurrency stress for the retrieval subsystem: interleaved Add / Remove /
// Search on the HNSW index and on ShardedExampleCache with the HNSW backend,
// driven from ThreadPool workers. These suites are the core of the
// ThreadSanitizer CI job (see .github/workflows/ci.yml) — keep them free of
// test-side sharing that would mask real races.
#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/mathutil.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/core/sharded_cache.h"
#include "src/index/hnsw.h"

namespace iccache {
namespace {

std::vector<float> RandomUnitVector(Rng& rng, size_t dim) {
  std::vector<float> v(dim);
  for (auto& x : v) {
    x = static_cast<float>(rng.Normal());
  }
  NormalizeL2(v);
  return v;
}

// Interleaved Add/Remove/Search from many workers. Each worker owns a
// disjoint id range so the final live set is checkable; removes target the
// worker's own already-inserted ids so every Remove outcome is deterministic
// per worker even though the interleaving is not.
TEST(HnswStressTest, ConcurrentAddRemoveSearch) {
  const size_t dim = 16;
  const size_t kWorkers = 8;
  const size_t kOpsPerWorker = 400;

  HnswIndexConfig config;
  config.dim = dim;
  config.min_tombstones_to_compact = 32;  // make compaction fire mid-stress
  HnswIndex index(config);

  std::atomic<size_t> total_added{0};
  std::atomic<size_t> total_removed{0};
  ThreadPool pool(kWorkers);
  for (size_t w = 0; w < kWorkers; ++w) {
    pool.Submit([&index, &total_added, &total_removed, w] {
      Rng rng(0x57e55ull + w);
      std::vector<uint64_t> mine;
      uint64_t next_id = (w + 1) << 32;  // disjoint id space per worker
      for (size_t op = 0; op < kOpsPerWorker; ++op) {
        const double dice = rng.Uniform();
        if (dice < 0.55 || mine.empty()) {
          const uint64_t id = next_id++;
          ASSERT_TRUE(index.Add(id, RandomUnitVector(rng, dim)).ok());
          mine.push_back(id);
          total_added.fetch_add(1, std::memory_order_relaxed);
        } else if (dice < 0.75) {
          const size_t pick = rng.UniformInt(mine.size());
          ASSERT_TRUE(index.Remove(mine[pick]));
          mine.erase(mine.begin() + static_cast<long>(pick));
          total_removed.fetch_add(1, std::memory_order_relaxed);
        } else {
          const auto results = index.Search(RandomUnitVector(rng, dim), 10);
          for (size_t i = 1; i < results.size(); ++i) {
            ASSERT_GE(results[i - 1].score, results[i].score);
          }
        }
      }
    });
  }
  pool.Wait();

  EXPECT_EQ(index.size(), total_added.load() - total_removed.load());
  // After the churn settles, every surviving id is findable and no removed id
  // ever surfaces.
  Rng rng(0xf17a1);
  const auto everything =
      index.SearchEf(RandomUnitVector(rng, dim), index.size() + index.tombstones(), 4096);
  EXPECT_EQ(everything.size(), index.size());
}

// Readers run against a single writer thread that churns the index; searches
// must stay well-formed throughout (shared_mutex read path). Readers do a
// bounded number of searches rather than spinning on a stop flag: glibc
// rwlocks prefer readers by default, and a saturating reader pool can starve
// the writer indefinitely.
TEST(HnswStressTest, ManyReadersOneWriter) {
  const size_t dim = 16;
  HnswIndexConfig config;
  config.dim = dim;
  HnswIndex index(config);
  Rng seed_rng(0xbeef);
  for (uint64_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(index.Add(i, RandomUnitVector(seed_rng, dim)).ok());
  }

  ThreadPool pool(6);
  for (size_t w = 0; w < 5; ++w) {
    pool.Submit([&index, w] {
      Rng rng(0x4ead + w);
      for (int i = 0; i < 800; ++i) {
        const auto results = index.Search(RandomUnitVector(rng, 16), 5);
        ASSERT_LE(results.size(), 5u);
        std::set<uint64_t> unique;
        for (const auto& r : results) {
          unique.insert(r.id);
        }
        ASSERT_EQ(unique.size(), results.size());
      }
    });
  }
  pool.Submit([&index] {
    Rng rng(0x3417e);
    for (uint64_t i = 0; i < 600; ++i) {
      if (i % 3 == 0) {
        index.Remove(i % 500);
      } else {
        index.Add(1000 + i, RandomUnitVector(rng, 16));
      }
    }
  });
  pool.Wait();
  EXPECT_GT(index.size(), 0u);
}

// Batched search under churn: 8 threads hammer SearchBatch (each with its own
// SearchScratch — the documented contract) while a writer inserts and removes
// concurrently. Exercises the one-shared-lock-per-batch path the serving
// driver's chunked prepare uses; any scratch state accidentally shared across
// readers, or batch state read outside the lock, surfaces here under TSan.
TEST(HnswStressTest, ConcurrentSearchBatchWithInserts) {
  const size_t dim = 16;
  const size_t kReaders = 8;
  HnswIndexConfig config;
  config.dim = dim;
  config.min_tombstones_to_compact = 32;  // compaction fires mid-stress
  HnswIndex index(config);
  Rng seed_rng(0x8a7c4);
  for (uint64_t i = 1; i <= 600; ++i) {
    ASSERT_TRUE(index.Add(i, RandomUnitVector(seed_rng, dim)).ok());
  }

  ThreadPool pool(kReaders + 1);
  for (size_t w = 0; w < kReaders; ++w) {
    pool.Submit([&index, w] {
      Rng rng(0xba7c4 + w);
      SearchScratch scratch;
      std::vector<float> arena;
      for (int round = 0; round < 120; ++round) {
        const size_t batch = 1 + rng.UniformInt(7);
        arena.clear();
        for (size_t q = 0; q < batch; ++q) {
          const auto v = RandomUnitVector(rng, 16);
          arena.insert(arena.end(), v.begin(), v.end());
        }
        index.SearchBatch(arena.data(), batch, 16, 5, &scratch);
        for (size_t q = 0; q < batch; ++q) {
          ASSERT_LE(scratch.ResultCountOf(q), 5u);
          const SearchResult* results = scratch.ResultsOf(q);
          std::set<uint64_t> unique;
          for (size_t r = 0; r < scratch.ResultCountOf(q); ++r) {
            if (r > 0) {
              ASSERT_GE(results[r - 1].score, results[r].score);
            }
            unique.insert(results[r].id);
          }
          ASSERT_EQ(unique.size(), scratch.ResultCountOf(q));
        }
      }
    });
  }
  pool.Submit([&index] {
    Rng rng(0x3417f);
    for (uint64_t i = 0; i < 500; ++i) {
      if (i % 3 == 0) {
        index.Remove(1 + (i % 600));
      } else {
        index.Add(2000 + i, RandomUnitVector(rng, 16));
      }
    }
  });
  pool.Wait();
  EXPECT_GT(index.size(), 0u);
}

// ShardedExampleCache with the HNSW backend under interleaved admissions,
// lookups, bookkeeping, and removals — the access pattern of the serving
// driver's parallel phase plus eviction churn.
TEST(ShardedCacheHnswStressTest, InterleavedPutSearchRemove) {
  ShardedCacheConfig config;
  config.num_shards = 4;
  config.cache.retrieval.kind = RetrievalBackendKind::kHnsw;
  config.cache.retrieval.hnsw.min_tombstones_to_compact = 16;
  ShardedExampleCache cache(std::make_shared<HashingEmbedder>(), config);

  const size_t kWorkers = 8;
  const size_t kOpsPerWorker = 150;
  std::atomic<size_t> put_count{0};
  std::atomic<size_t> removed_count{0};
  ThreadPool pool(kWorkers);
  for (size_t w = 0; w < kWorkers; ++w) {
    pool.Submit([&cache, &put_count, &removed_count, w] {
      Rng rng(0x5a4ded + w);
      std::vector<uint64_t> mine;
      for (size_t op = 0; op < kOpsPerWorker; ++op) {
        const double dice = rng.Uniform();
        Request request;
        request.id = (static_cast<uint64_t>(w + 1) << 40) + op;
        request.text = "worker " + std::to_string(w) + " topic " +
                       std::to_string(rng.UniformInt(40)) + " question " + std::to_string(op);
        request.input_tokens = 12;
        if (dice < 0.5 || mine.empty()) {
          const uint64_t id = cache.Put(request, "response", 0.8, 0.9, 16, 0.0);
          if (id != 0) {
            mine.push_back(id);
            put_count.fetch_add(1, std::memory_order_relaxed);
          }
        } else if (dice < 0.65) {
          const size_t pick = rng.UniformInt(mine.size());
          if (cache.Remove(mine[pick])) {
            removed_count.fetch_add(1, std::memory_order_relaxed);
          }
          mine.erase(mine.begin() + static_cast<long>(pick));
        } else if (dice < 0.85) {
          for (const auto& result : cache.FindSimilar(request, 8)) {
            Example example;
            // The example may be concurrently removed between search and
            // snapshot; both outcomes are legal, corruption is not.
            if (cache.Snapshot(result.id, &example)) {
              ASSERT_EQ(example.id, result.id);
            }
          }
        } else {
          if (!mine.empty()) {
            cache.RecordAccess(mine[rng.UniformInt(mine.size())], 1.0);
            cache.RecordOffload(mine[rng.UniformInt(mine.size())], 0.5);
          }
        }
      }
    });
  }
  pool.Wait();

  EXPECT_EQ(cache.size(), put_count.load() - removed_count.load());
  EXPECT_EQ(cache.AllIds().size(), cache.size());
  // Every surviving id snapshots cleanly after the churn.
  for (uint64_t id : cache.AllIds()) {
    Example example;
    EXPECT_TRUE(cache.Snapshot(id, &example));
  }
}

}  // namespace
}  // namespace iccache
