// Concurrency coverage for the observability layer (runs under TSan via the
// `concurrency` ctest label): many threads emitting trace spans into their
// per-thread rings simultaneously, and many threads hammering shared
// MetricsHub handles. Both must be data-race-free AND lose nothing: the
// recorder's emitted+dropped accounting and the hub's counter/histogram
// totals are exact, so the assertions check arithmetic identities rather
// than just "did not crash".
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace iccache {
namespace {

constexpr size_t kThreads = 8;
constexpr size_t kEventsPerThread = 5000;

TEST(ObsConcurrencyTest, ConcurrentEmitAccountsEveryEvent) {
  TraceRecorder recorder(/*ring_capacity=*/512);  // far smaller than the load: forces wrap
  std::atomic<bool> start{false};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, &start, t] {
      while (!start.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      for (size_t i = 0; i < kEventsPerThread; ++i) {
        TraceEvent event;
        event.begin_ns = i;
        event.end_ns = i + 1;
        event.request_id = t;
        event.category = TraceCategory::kLaneCommit;
        recorder.Emit(event);
      }
    });
  }
  start.store(true, std::memory_order_release);
  for (auto& thread : threads) {
    thread.join();
  }

  const TraceRecorder::Snapshot snapshot = recorder.TakeSnapshot();
  EXPECT_EQ(snapshot.emitted, kThreads * kEventsPerThread);
  EXPECT_EQ(snapshot.dropped, kThreads * (kEventsPerThread - 512));
  ASSERT_EQ(snapshot.threads.size(), kThreads);
  for (const auto& ring : snapshot.threads) {
    // Single-producer rings: each thread's accounting is independently exact,
    // and the survivors are that thread's newest events in emission order.
    EXPECT_EQ(ring.emitted, kEventsPerThread);
    EXPECT_EQ(ring.dropped, kEventsPerThread - 512);
    ASSERT_EQ(ring.events.size(), 512u);
    for (size_t i = 0; i < ring.events.size(); ++i) {
      EXPECT_EQ(ring.events[i].begin_ns, kEventsPerThread - 512 + i);
      EXPECT_EQ(ring.events[i].request_id, ring.events[0].request_id);
    }
  }
}

TEST(ObsConcurrencyTest, ConcurrentSpansThroughGlobalRecorder) {
  ScopedTracing on(true);
  TraceRecorder::Global().Reset();
  const uint64_t emitted_before = TraceRecorder::Global().total_emitted();
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (size_t i = 0; i < 1000; ++i) {
        TraceSpan span(TraceCategory::kPrepare, /*request_id=*/i);
        span.SetArgs(i);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(TraceRecorder::Global().total_emitted() - emitted_before, kThreads * 1000);
}

TEST(ObsConcurrencyTest, ConcurrentCounterAddsAreExact) {
  MetricsHub hub;
  MetricCounter* counter = hub.Counter("total");
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (size_t i = 0; i < 20000; ++i) {
        counter->Add(1.0);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  // Every CAS-looped add lands: integer-valued doubles are exact well past
  // this magnitude, so the total is an identity, not an approximation.
  EXPECT_DOUBLE_EQ(counter->value(), static_cast<double>(kThreads * 20000));
}

TEST(ObsConcurrencyTest, ConcurrentRegistrationAndObserve) {
  MetricsHub hub;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hub, t] {
      for (size_t i = 0; i < 2000; ++i) {
        // Half the traffic races registration of the same names, half updates
        // through fresh handle lookups; both paths must serialize cleanly.
        hub.Observe("latency", static_cast<double>(i % 100) * 1e-3 + 1e-4);
        hub.Add("requests_total");
        hub.Set("gauge_" + std::to_string(t), static_cast<double>(i));
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_DOUBLE_EQ(hub.Value("requests_total"), static_cast<double>(kThreads * 2000));
  EXPECT_EQ(hub.HistogramSnapshot("latency").count(), kThreads * 2000);
  EXPECT_DOUBLE_EQ(hub.Value("gauge_0"), 1999.0);
}

TEST(ObsConcurrencyTest, SnapshotWindowRacesUpdates) {
  // Window snapshots happen on the driver thread while metric updates keep
  // arriving; the series must stay internally consistent (bounded, name
  // sorted) without torn values.
  MetricsHub hub;
  hub.set_series_capacity(64);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (size_t t = 0; t < 4; ++t) {
    writers.emplace_back([&hub, &stop] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        hub.Add("ops_total");
        hub.Set("depth", static_cast<double>(++i));
      }
    });
  }
  for (uint64_t window = 0; window < 200; ++window) {
    hub.SnapshotWindow(window, static_cast<double>(window), window);
  }
  stop.store(true, std::memory_order_release);
  for (auto& thread : writers) {
    thread.join();
  }
  const auto series = hub.series();
  ASSERT_EQ(series.size(), 64u);
  EXPECT_EQ(hub.series_dropped(), 200u - 64u);
  double previous = 0.0;
  for (const auto& sample : series) {
    for (const auto& [name, value] : sample.values) {
      if (name == "ops_total") {
        EXPECT_GE(value, previous);  // counters only move forward
        previous = value;
      }
    }
  }
}

}  // namespace
}  // namespace iccache
