// Batched search (SearchBatch) acceptance: bit-identical to the single-query
// path across all three backends x {float, int8} x batch sizes {1, 7, 32},
// zero steady-state allocations (scratch-reuse counter), and the visited
// high-watermark rebuild. ci.sh additionally reruns this suite under
// ICCACHE_FORCE_SCALAR=1 so the identity holds on both dispatch paths.
#include <cmath>
#include <memory>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/rng.h"
#include "src/index/hnsw.h"
#include "src/index/vector_index.h"

namespace iccache {
namespace {

std::vector<float> RandomUnitVector(size_t dim, Rng& rng) {
  std::vector<float> v(dim);
  double norm = 0.0;
  for (float& x : v) {
    x = static_cast<float>(rng.Normal());
    norm += static_cast<double>(x) * static_cast<double>(x);
  }
  norm = std::sqrt(std::max(norm, 1e-12));
  for (float& x : v) {
    x = static_cast<float>(x / norm);
  }
  return v;
}

// Flattens `n` queries into one contiguous arena (the SearchBatch layout).
std::vector<float> MakeQueryArena(size_t n, size_t dim, uint64_t seed,
                                  std::vector<std::vector<float>>* individual) {
  Rng rng(seed);
  std::vector<float> arena;
  arena.reserve(n * dim);
  for (size_t i = 0; i < n; ++i) {
    std::vector<float> q = RandomUnitVector(dim, rng);
    arena.insert(arena.end(), q.begin(), q.end());
    individual->push_back(std::move(q));
  }
  return arena;
}

void FillIndex(VectorIndex* index, size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(index->Add(i + 1, RandomUnitVector(dim, rng)).ok());
  }
}

// The acceptance predicate: every batch result range must equal the
// single-query result bit-for-bit (ids AND scores), at every batch size.
void ExpectBatchMatchesSingle(const VectorIndex& index, size_t dim, size_t k,
                              size_t num_queries, uint64_t seed) {
  std::vector<std::vector<float>> queries;
  const std::vector<float> arena = MakeQueryArena(num_queries, dim, seed, &queries);
  SearchScratch scratch;
  for (size_t batch : {size_t{1}, size_t{7}, size_t{32}}) {
    for (size_t base = 0; base < num_queries; base += batch) {
      const size_t n = std::min(batch, num_queries - base);
      index.SearchBatch(arena.data() + base * dim, n, dim, k, &scratch);
      for (size_t i = 0; i < n; ++i) {
        const std::vector<SearchResult> single = index.Search(queries[base + i], k);
        ASSERT_EQ(single.size(), scratch.ResultCountOf(i))
            << "batch=" << batch << " query=" << base + i;
        const SearchResult* got = scratch.ResultsOf(i);
        for (size_t r = 0; r < single.size(); ++r) {
          EXPECT_EQ(single[r].id, got[r].id) << "batch=" << batch << " query=" << base + i
                                             << " rank=" << r;
          EXPECT_EQ(single[r].score, got[r].score)
              << "batch=" << batch << " query=" << base + i << " rank=" << r;
        }
      }
    }
  }
}

constexpr size_t kDim = 32;

TEST(IndexBatchTest, FlatBatchMatchesSingle) {
  FlatIndex index(kDim);
  FillIndex(&index, 500, kDim, 0x11);
  ExpectBatchMatchesSingle(index, kDim, 10, 64, 0x22);
}

TEST(IndexBatchTest, KMeansUnclusteredBatchMatchesSingle) {
  KMeansIndexConfig config;
  config.dim = kDim;
  KMeansIndex index(config);
  FillIndex(&index, 40, kDim, 0x33);  // below min_points_to_cluster: flat path
  ASSERT_FALSE(index.clustered());
  ExpectBatchMatchesSingle(index, kDim, 5, 48, 0x44);
}

TEST(IndexBatchTest, KMeansClusteredBatchMatchesSingle) {
  KMeansIndexConfig config;
  config.dim = kDim;
  KMeansIndex index(config);
  FillIndex(&index, 600, kDim, 0x55);
  ASSERT_TRUE(index.clustered());
  ExpectBatchMatchesSingle(index, kDim, 10, 64, 0x66);
}

TEST(IndexBatchTest, HnswFloatBatchMatchesSingle) {
  HnswIndexConfig config;
  config.dim = kDim;
  config.max_neighbors = 8;
  config.ef_construction = 60;
  config.ef_search = 48;
  HnswIndex index(config);
  FillIndex(&index, 1500, kDim, 0x77);
  ExpectBatchMatchesSingle(index, kDim, 10, 64, 0x88);
}

TEST(IndexBatchTest, HnswInt8BatchMatchesSingle) {
  HnswIndexConfig config;
  config.dim = kDim;
  config.max_neighbors = 8;
  config.ef_construction = 60;
  config.ef_search = 48;
  config.quantize_int8 = true;
  config.rerank_k = 16;
  HnswIndex index(config);
  FillIndex(&index, 1500, kDim, 0x99);
  ExpectBatchMatchesSingle(index, kDim, 10, 64, 0xaa);
}

TEST(IndexBatchTest, HnswBatchMatchesSingleWithTombstones) {
  HnswIndexConfig config;
  config.dim = kDim;
  config.max_neighbors = 8;
  config.ef_construction = 60;
  config.ef_search = 48;
  // Keep tombstones in the graph (no compaction) so batch and single both
  // traverse through and filter them.
  config.min_tombstones_to_compact = 1u << 30;
  HnswIndex index(config);
  FillIndex(&index, 1200, kDim, 0xbb);
  for (uint64_t id = 3; id <= 1200; id += 3) {
    ASSERT_TRUE(index.Remove(id));
  }
  ASSERT_GT(index.tombstones(), 0u);
  ExpectBatchMatchesSingle(index, kDim, 10, 48, 0xcc);
}

TEST(IndexBatchTest, BatchOfOneAndEmptyIndexEdgeCases) {
  HnswIndex index(HnswIndexConfig{});  // dim 128, empty graph
  SearchScratch scratch;
  std::vector<float> q(128, 0.0f);
  q[0] = 1.0f;
  index.SearchBatch(q.data(), 1, 128, 5, &scratch);
  EXPECT_EQ(scratch.ResultCountOf(0), 0u);
  // k == 0: empty ranges for every query.
  FlatIndex flat(4);
  ASSERT_TRUE(flat.Add(1, {1.0f, 0.0f, 0.0f, 0.0f}).ok());
  std::vector<float> two(8, 0.5f);
  flat.SearchBatch(two.data(), 2, 4, 0, &scratch);
  EXPECT_EQ(scratch.ResultCountOf(0), 0u);
  EXPECT_EQ(scratch.ResultCountOf(1), 0u);
}

// Steady-state SearchBatch must perform ZERO heap allocations per query: the
// scratch-reuse counter (`grows`) stops advancing once the scratch is warm.
TEST(IndexBatchTest, SteadyStateBatchDoesNotGrowScratch) {
  for (const bool quantize : {false, true}) {
    HnswIndexConfig config;
    config.dim = kDim;
    config.max_neighbors = 8;
    config.ef_construction = 60;
    config.ef_search = 48;
    config.quantize_int8 = quantize;
    HnswIndex index(config);
    FillIndex(&index, 2000, kDim, 0xdd);
    std::vector<std::vector<float>> queries;
    const std::vector<float> arena = MakeQueryArena(32, kDim, 0xee, &queries);
    SearchScratch scratch;
    index.SearchBatch(arena.data(), 32, kDim, 10, &scratch);  // warm-up batch
    const uint64_t warm = scratch.grows;
    for (int round = 0; round < 20; ++round) {
      index.SearchBatch(arena.data(), 32, kDim, 10, &scratch);
    }
    EXPECT_EQ(scratch.grows, warm) << "quantize=" << quantize
                                   << ": steady-state batches reallocated scratch";
  }
}

TEST(IndexBatchTest, FlatSteadyStateBatchDoesNotGrowScratch) {
  FlatIndex index(kDim);
  FillIndex(&index, 800, kDim, 0x12);
  std::vector<std::vector<float>> queries;
  const std::vector<float> arena = MakeQueryArena(16, kDim, 0x13, &queries);
  SearchScratch scratch;
  index.SearchBatch(arena.data(), 16, kDim, 10, &scratch);
  const uint64_t warm = scratch.grows;
  for (int round = 0; round < 20; ++round) {
    index.SearchBatch(arena.data(), 16, kDim, 10, &scratch);
  }
  EXPECT_EQ(scratch.grows, warm);
}

// The visited high-watermark satellite: after the graph shrinks far below a
// previous peak, the next search rebuilds the epoch buffer instead of pinning
// the peak-size allocation forever.
TEST(IndexBatchTest, VisitedScratchShrinksPastHighWatermark) {
  HnswIndexConfig config;
  config.dim = kDim;
  config.max_neighbors = 8;
  config.ef_construction = 40;
  config.ef_search = 32;
  config.visited_shrink_floor = 128;  // testable floor (default is 1 << 16)
  HnswIndex index(config);
  FillIndex(&index, 1200, kDim, 0x14);
  std::vector<std::vector<float>> queries;
  const std::vector<float> arena = MakeQueryArena(4, kDim, 0x15, &queries);
  SearchScratch scratch;
  index.SearchBatch(arena.data(), 4, kDim, 5, &scratch);
  const size_t peak = scratch.epochs.capacity();
  ASSERT_GE(peak, 1200u);
  // Shrink the graph well below peak/4 (Removes trigger compaction, which
  // drops the tombstones from nodes_ as well).
  for (uint64_t id = 1; id <= 1150; ++id) {
    index.Remove(id);
  }
  ASSERT_LE(index.size(), 50u);
  index.SearchBatch(arena.data(), 4, kDim, 5, &scratch);
  EXPECT_LT(scratch.epochs.capacity(), peak / 4)
      << "epoch buffer still pinned at its high watermark";
  // And the shrunk scratch still produces identical results.
  for (size_t i = 0; i < 4; ++i) {
    const std::vector<SearchResult> single = index.Search(queries[i], 5);
    ASSERT_EQ(single.size(), scratch.ResultCountOf(i));
    for (size_t r = 0; r < single.size(); ++r) {
      EXPECT_EQ(single[r].id, scratch.ResultsOf(i)[r].id);
      EXPECT_EQ(single[r].score, scratch.ResultsOf(i)[r].score);
    }
  }
}

}  // namespace
}  // namespace iccache
