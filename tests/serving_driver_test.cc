#include "src/serving/driver.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/workload/dataset.h"

namespace iccache {
namespace {

constexpr uint64_t kSeed = 0x5e55ed;

DatasetProfile SmallProfile() {
  DatasetProfile profile = GetDatasetProfile(DatasetId::kLmsysChat);
  profile.example_pool_size = 300;
  profile.num_topics = 60;
  return profile;
}

std::vector<Request> SmallWorkload(size_t approx_requests = 400) {
  TraceConfig trace;
  trace.kind = TraceKind::kPoisson;
  trace.mean_rps = 4.0;
  trace.duration_s = static_cast<double>(approx_requests) / trace.mean_rps;
  trace.seed = kSeed ^ 0x7ace;
  return ServingDriver::MakeWorkload(SmallProfile(), trace, kSeed ^ 0x9e4);
}

std::unique_ptr<ServingDriver> MakeDriverWithConfig(const ModelCatalog& catalog,
                                                    DriverConfig config,
                                                    size_t seed_pool = 300) {
  config.seed = kSeed;
  auto driver = std::make_unique<ServingDriver>(config, &catalog);
  QueryGenerator seeder(SmallProfile(), kSeed ^ 0x5eedb);
  for (size_t i = 0; i < seed_pool; ++i) {
    driver->SeedExample(seeder.Next(), 0.0);
  }
  return driver;
}

std::unique_ptr<ServingDriver> MakeDriver(const ModelCatalog& catalog, size_t num_threads,
                                          size_t seed_pool = 300) {
  DriverConfig config;
  config.num_threads = num_threads;
  config.batch_window = 32;
  config.cache.num_shards = 4;
  return MakeDriverWithConfig(catalog, config, seed_pool);
}

void ExpectSameDecisions(const DriverReport& a, const DriverReport& b) {
  ASSERT_EQ(a.decisions.size(), b.decisions.size());
  for (size_t i = 0; i < a.decisions.size(); ++i) {
    EXPECT_EQ(a.decisions[i].request_id, b.decisions[i].request_id);
    EXPECT_EQ(a.decisions[i].model_name, b.decisions[i].model_name);
    EXPECT_EQ(a.decisions[i].offloaded, b.decisions[i].offloaded);
    EXPECT_EQ(a.decisions[i].num_examples, b.decisions[i].num_examples);
    EXPECT_DOUBLE_EQ(a.decisions[i].latent_quality, b.decisions[i].latent_quality);
  }
}

TEST(ServingDriverTest, MakeWorkloadIsDeterministic) {
  const std::vector<Request> a = SmallWorkload(100);
  const std::vector<Request> b = SmallWorkload(100);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].text, b[i].text);
    EXPECT_DOUBLE_EQ(a[i].arrival_time, b[i].arrival_time);
  }
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end(), [](const Request& x, const Request& y) {
    return x.arrival_time < y.arrival_time;
  }));
}

// The tentpole determinism property: a fixed seed must produce identical
// completion sets — same request ids, same per-request model choice — no
// matter how many worker threads execute the preparation phase.
TEST(ServingDriverTest, IdenticalDecisionsAtOneAndEightThreads) {
  const std::vector<Request> requests = SmallWorkload();
  ModelCatalog catalog;
  const DriverReport single = MakeDriver(catalog, 1)->Run(requests);
  const DriverReport eight = MakeDriver(catalog, 8)->Run(requests);

  ASSERT_EQ(single.decisions.size(), eight.decisions.size());
  for (size_t i = 0; i < single.decisions.size(); ++i) {
    EXPECT_EQ(single.decisions[i].request_id, eight.decisions[i].request_id);
    EXPECT_EQ(single.decisions[i].model_name, eight.decisions[i].model_name);
    EXPECT_EQ(single.decisions[i].offloaded, eight.decisions[i].offloaded);
    EXPECT_EQ(single.decisions[i].num_examples, eight.decisions[i].num_examples);
    EXPECT_DOUBLE_EQ(single.decisions[i].latent_quality, eight.decisions[i].latent_quality);
  }

  ASSERT_EQ(single.completions.size(), eight.completions.size());
  for (size_t i = 0; i < single.completions.size(); ++i) {
    EXPECT_EQ(single.completions[i].id, eight.completions[i].id);
    EXPECT_EQ(single.completions[i].model, eight.completions[i].model);
    EXPECT_DOUBLE_EQ(single.completions[i].completion_time, eight.completions[i].completion_time);
  }
  EXPECT_EQ(single.offloaded_requests, eight.offloaded_requests);
  EXPECT_EQ(single.admitted_examples, eight.admitted_examples);
}

// Thread-count invariance must hold for every retrieval backend the driver
// can be configured with, not just the default: the HNSW graph is built
// serially in phase 2 (admissions) and searched concurrently in phase 1, so
// a fixed seed must still yield identical decisions at 1 and 8 threads.
TEST(ServingDriverTest, HnswBackendIsThreadCountInvariant) {
  const std::vector<Request> requests = SmallWorkload();
  ModelCatalog catalog;
  DriverConfig config;
  config.batch_window = 32;
  config.cache.num_shards = 4;
  config.cache.cache.retrieval.kind = RetrievalBackendKind::kHnsw;

  config.num_threads = 1;
  const DriverReport single = MakeDriverWithConfig(catalog, config)->Run(requests);
  config.num_threads = 8;
  const DriverReport eight = MakeDriverWithConfig(catalog, config)->Run(requests);

  ExpectSameDecisions(single, eight);
  EXPECT_EQ(single.offloaded_requests, eight.offloaded_requests);
  EXPECT_EQ(single.admitted_examples, eight.admitted_examples);
  EXPECT_GT(single.offloaded_requests, 0u);
}

// Determinism guard for the int8-quantized arena: the kernel dispatch level
// is fixed per process and the quantized traversal uses the bit-exact integer
// dot, so decisions must stay byte-identical across the full {1,8} threads x
// {1,4} commit-lanes matrix with quantization on.
TEST(ServingDriverTest, QuantizedHnswIsThreadAndLaneCountInvariant) {
  const std::vector<Request> requests = SmallWorkload();
  ModelCatalog catalog;
  DriverConfig base;
  base.batch_window = 32;
  base.cache.num_shards = 4;
  base.cache.cache.retrieval.kind = RetrievalBackendKind::kHnsw;
  base.cache.cache.retrieval.quantize = QuantizationKind::kInt8;

  const DriverReport* reference = nullptr;
  std::vector<DriverReport> reports;
  reports.reserve(4);
  for (size_t threads : {1u, 8u}) {
    for (size_t lanes : {1u, 4u}) {
      DriverConfig config = base;
      config.num_threads = threads;
      config.commit_lanes = lanes;
      reports.push_back(MakeDriverWithConfig(catalog, config)->Run(requests));
      // Every run reports the same (process-fixed) kernel level.
      EXPECT_EQ(reports.back().simd_kernel, reports.front().simd_kernel);
      if (reference == nullptr) {
        reference = &reports.back();
        continue;
      }
      ExpectSameDecisions(*reference, reports.back());
      EXPECT_EQ(reference->offloaded_requests, reports.back().offloaded_requests);
      EXPECT_EQ(reference->admitted_examples, reports.back().admitted_examples);
    }
  }
  ASSERT_NE(reference, nullptr);
  EXPECT_GT(reference->offloaded_requests, 0u);
  // Quantized retrieval actually exercised the rerank pass.
  EXPECT_GT(reference->hnsw_rerank_queries, 0u);
  EXPECT_GE(reference->hnsw_rerank_candidates, reference->hnsw_rerank_queries);
  EXPECT_TRUE(reference->simd_kernel == "avx2" || reference->simd_kernel == "scalar");
}

// The batched prepare path re-blocks embed/stage-0/stage-1 work into
// prepare_chunk-sized batches, but chunking is a locality optimisation only:
// decisions, counters, and memo-independent state must be byte-identical at
// chunk sizes 1 (degenerate per-request batches), the default, and a chunk
// larger than the batch window — at 1 and 8 threads.
TEST(ServingDriverTest, PrepareChunkSizeIsDecisionInvariant) {
  const std::vector<Request> requests = SmallWorkload();
  ModelCatalog catalog;
  DriverConfig base;
  base.batch_window = 32;
  base.cache.num_shards = 4;
  base.cache.cache.retrieval.kind = RetrievalBackendKind::kHnsw;

  const DriverReport* reference = nullptr;
  std::vector<DriverReport> reports;
  reports.reserve(8);
  for (size_t threads : {1u, 8u}) {
    for (size_t chunk : {1u, 16u, 48u}) {
      DriverConfig config = base;
      config.num_threads = threads;
      config.prepare_chunk = chunk;
      reports.push_back(MakeDriverWithConfig(catalog, config)->Run(requests));
      if (reference == nullptr) {
        reference = &reports.back();
        continue;
      }
      ExpectSameDecisions(*reference, reports.back());
      EXPECT_EQ(reference->offloaded_requests, reports.back().offloaded_requests);
      EXPECT_EQ(reference->admitted_examples, reports.back().admitted_examples);
    }
  }
  ASSERT_NE(reference, nullptr);
  EXPECT_GT(reference->offloaded_requests, 0u);
}

// The embedding memo must be invisible in results: with zero slots (memo off)
// and with generous slots, the decision stream is identical — a hit replays
// the embedder's output byte-for-byte. Repeated texts in the duplicate-heavy
// half of the workload give the memo real hits to replay.
TEST(ServingDriverTest, EmbedMemoIsDecisionInvariant) {
  std::vector<Request> requests = SmallWorkload();
  // Make the tail half verbatim repeats of the head so exact-repeat hits
  // actually occur on the single-threaded run.
  for (size_t i = requests.size() / 2; i < requests.size(); ++i) {
    requests[i].text = requests[i - requests.size() / 2].text;
  }
  ModelCatalog catalog;
  DriverConfig config;
  config.batch_window = 32;
  config.cache.num_shards = 4;
  config.num_threads = 1;

  config.embed_memo_slots = 0;
  const DriverReport memo_off = MakeDriverWithConfig(catalog, config)->Run(requests);
  config.embed_memo_slots = 4096;
  const DriverReport memo_on = MakeDriverWithConfig(catalog, config)->Run(requests);

  ExpectSameDecisions(memo_off, memo_on);
  EXPECT_EQ(memo_off.offloaded_requests, memo_on.offloaded_requests);
  EXPECT_EQ(memo_off.admitted_examples, memo_on.admitted_examples);
  EXPECT_EQ(memo_off.embed_memo_hits, 0u);
  EXPECT_GT(memo_on.embed_memo_hits, 0u);
}

// Satellite: shard count and retrieval backend are plain DriverConfig knobs.
// A single-shard flat configuration must reproduce the exact-search behavior
// (flat search is exact, so sharding only changes id encoding, not which
// examples are retrieved) and stay deterministic across runs and threads.
TEST(ServingDriverTest, SingleShardFlatConfigReproducesExactPath) {
  const std::vector<Request> requests = SmallWorkload();
  ModelCatalog catalog;
  DriverConfig config;
  config.batch_window = 32;
  config.cache.num_shards = 1;
  config.cache.cache.retrieval.kind = RetrievalBackendKind::kFlat;

  config.num_threads = 1;
  const DriverReport a = MakeDriverWithConfig(catalog, config)->Run(requests);
  config.num_threads = 8;
  const DriverReport b = MakeDriverWithConfig(catalog, config)->Run(requests);
  ExpectSameDecisions(a, b);
  EXPECT_GT(a.offloaded_requests, 0u);
  EXPECT_LT(a.offloaded_requests, a.total_requests);

  // Exact-path shard invariance: the flat backend retrieves the same example
  // set no matter how many shards the cache is split into.
  config.cache.num_shards = 4;
  config.num_threads = 2;
  const DriverReport sharded = MakeDriverWithConfig(catalog, config)->Run(requests);
  ASSERT_EQ(a.decisions.size(), sharded.decisions.size());
  for (size_t i = 0; i < a.decisions.size(); ++i) {
    EXPECT_EQ(a.decisions[i].offloaded, sharded.decisions[i].offloaded) << "request " << i;
    EXPECT_EQ(a.decisions[i].num_examples, sharded.decisions[i].num_examples)
        << "request " << i;
  }
}

TEST(ServingDriverTest, EveryRequestCompletesExactlyOnce) {
  const std::vector<Request> requests = SmallWorkload();
  ModelCatalog catalog;
  const DriverReport report = MakeDriver(catalog, 2)->Run(requests);

  EXPECT_EQ(report.total_requests, requests.size());
  EXPECT_EQ(report.decisions.size(), requests.size());
  ASSERT_EQ(report.completions.size(), requests.size());
  std::map<uint64_t, size_t> seen;
  for (const CompletionRecord& record : report.completions) {
    ++seen[record.id];
  }
  for (const Request& request : requests) {
    EXPECT_EQ(seen[request.id], 1u) << "request " << request.id;
  }
}

TEST(ServingDriverTest, CompletionModelMatchesRoutingDecision) {
  const std::vector<Request> requests = SmallWorkload(200);
  ModelCatalog catalog;
  const DriverReport report = MakeDriver(catalog, 4)->Run(requests);

  std::map<uint64_t, std::string> routed_model;
  for (const DriverDecision& decision : report.decisions) {
    routed_model[decision.request_id] = decision.model_name;
  }
  for (const CompletionRecord& record : report.completions) {
    EXPECT_EQ(record.model, routed_model[record.id]) << "request " << record.id;
  }
}

TEST(ServingDriverTest, RoutesToBothArmsAndUsesExamples) {
  const std::vector<Request> requests = SmallWorkload();
  ModelCatalog catalog;
  const auto driver = MakeDriver(catalog, 2);
  const DriverReport report = driver->Run(requests);

  EXPECT_GT(report.offloaded_requests, 0u);
  EXPECT_LT(report.offloaded_requests, report.total_requests);
  size_t with_examples = 0;
  for (const DriverDecision& decision : report.decisions) {
    if (decision.offloaded) {
      EXPECT_EQ(decision.model_name, driver->config().small_model);
      with_examples += decision.num_examples > 0 ? 1 : 0;
    } else {
      EXPECT_EQ(decision.model_name, decision.offloaded ? driver->config().small_model
                                                        : driver->config().large_model);
    }
  }
  EXPECT_GT(with_examples, 0u);
}

TEST(ServingDriverTest, LargeResponsesAreAdmittedIntoTheCache) {
  const std::vector<Request> requests = SmallWorkload();
  ModelCatalog catalog;
  const auto driver = MakeDriver(catalog, 2, /*seed_pool=*/100);
  const size_t before = driver->cache().size();
  const DriverReport report = driver->Run(requests);
  EXPECT_EQ(driver->cache().size(), before + report.admitted_examples);
}

TEST(ServingDriverTest, ReportStatisticsAreConsistent) {
  const std::vector<Request> requests = SmallWorkload(200);
  ModelCatalog catalog;
  const DriverReport report = MakeDriver(catalog, 2)->Run(requests);
  EXPECT_GT(report.wall_seconds, 0.0);
  EXPECT_GT(report.requests_per_second, 0.0);
  EXPECT_GE(report.prepare_seconds, 0.0);
  EXPECT_GE(report.serial_seconds, 0.0);
  EXPECT_GE(report.maintenance_seconds, 0.0);
  // The wall clock splits into exactly three buckets: parallel (pool-blocked)
  // time, the serial merge, and maintenance — so a maintenance tick can no
  // longer be silently booked as serial time.
  EXPECT_NEAR(report.prepare_seconds + report.serial_seconds + report.maintenance_seconds,
              report.wall_seconds, 1e-9);
  EXPECT_GE(report.p99_latency_s, report.p50_latency_s);
  EXPECT_GE(report.p99_ttft_s, report.p50_ttft_s);
  EXPECT_GE(report.p99_queue_delay_s, report.p50_queue_delay_s);
  EXPECT_GE(report.p50_latency_s, report.p50_ttft_s);  // e2e includes decode
  EXPECT_GT(report.mean_quality, 0.0);
  EXPECT_LE(report.mean_quality, 1.0);
}

// DriverConfig for the full lifecycle: a tight byte budget, fast decay +
// eviction ticks, and an always-eligible off-peak replay cadence.
DriverConfig LifecycleConfig() {
  DriverConfig config;
  config.batch_window = 32;
  config.cache.num_shards = 4;
  config.cache.cache.capacity_bytes = 48 * 1024;
  config.manager.decay_interval_s = 10.0;  // trace spans ~100 s of sim time
  config.replay_min_interval_s = 20.0;
  config.replay_load_threshold = 1e9;  // any load counts as off-peak
  return config;
}

// The tentpole acceptance property: with admission, gain accounting, decay +
// knapsack eviction, and off-peak replay ALL active through the shared
// lifecycle layer, a fixed seed must still produce byte-identical decisions
// and completions at 1 and 8 threads — every lifecycle mutation runs in the
// serial phase or between windows, never on a worker.
TEST(ServingDriverLifecycleTest, DeterministicAcrossThreadsWithFullLifecycle) {
  const std::vector<Request> requests = SmallWorkload();
  ModelCatalog catalog;
  DriverConfig config = LifecycleConfig();

  config.num_threads = 1;
  const DriverReport single = MakeDriverWithConfig(catalog, config)->Run(requests);
  config.num_threads = 8;
  const DriverReport eight = MakeDriverWithConfig(catalog, config)->Run(requests);

  ExpectSameDecisions(single, eight);
  ASSERT_EQ(single.completions.size(), eight.completions.size());
  for (size_t i = 0; i < single.completions.size(); ++i) {
    EXPECT_EQ(single.completions[i].id, eight.completions[i].id);
    EXPECT_DOUBLE_EQ(single.completions[i].completion_time, eight.completions[i].completion_time);
  }
  EXPECT_EQ(single.admitted_examples, eight.admitted_examples);
  EXPECT_EQ(single.maintenance_runs, eight.maintenance_runs);
  EXPECT_EQ(single.evicted_examples, eight.evicted_examples);
  EXPECT_EQ(single.replay_passes, eight.replay_passes);
  EXPECT_EQ(single.replayed_examples, eight.replayed_examples);

  // The lifecycle must have genuinely run, not been configured away.
  EXPECT_GT(single.maintenance_runs, 0u);
  EXPECT_GT(single.replay_passes, 0u);
}

// With a byte budget, the sharded pool must stay at or below it for the
// whole run: eviction is automatic on insert past the high watermark plus
// periodic on the maintenance tick, so no driver code path can leak growth.
TEST(ServingDriverLifecycleTest, CapacityBudgetHeldUnderLoad) {
  const std::vector<Request> requests = SmallWorkload();
  ModelCatalog catalog;
  const auto driver = MakeDriverWithConfig(catalog, LifecycleConfig());
  const DriverReport report = driver->Run(requests);

  EXPECT_GT(report.admitted_examples, 0u);
  EXPECT_GT(report.evicted_examples, 0u);  // the budget actually bound
  EXPECT_LE(static_cast<double>(driver->cache().used_bytes()),
            static_cast<double>(driver->config().cache.cache.capacity_bytes) *
                driver->config().cache.cache.high_watermark);
}

// Section-5 fault tolerance as DriverConfig knobs: a bypassed selector serves
// every request without examples; a bypassed router sends everything to the
// large backend. Both must preserve thread-count determinism.
TEST(ServingDriverLifecycleTest, SelectorFaultBypassServesWithoutExamples) {
  const std::vector<Request> requests = SmallWorkload(200);
  ModelCatalog catalog;
  DriverConfig config = LifecycleConfig();
  config.selector_fault_bypass = true;

  config.num_threads = 1;
  const DriverReport single = MakeDriverWithConfig(catalog, config)->Run(requests);
  config.num_threads = 8;
  const DriverReport eight = MakeDriverWithConfig(catalog, config)->Run(requests);
  ExpectSameDecisions(single, eight);

  EXPECT_EQ(single.decisions.size(), requests.size());
  for (const DriverDecision& decision : single.decisions) {
    EXPECT_EQ(decision.num_examples, 0u);
  }
}

TEST(ServingDriverLifecycleTest, RouterFaultBypassRoutesEverythingToLarge) {
  const std::vector<Request> requests = SmallWorkload(200);
  ModelCatalog catalog;
  DriverConfig config = LifecycleConfig();
  config.router_fault_bypass = true;

  config.num_threads = 2;
  const auto driver = MakeDriverWithConfig(catalog, config);
  const DriverReport report = driver->Run(requests);
  EXPECT_EQ(report.offloaded_requests, 0u);
  for (const DriverDecision& decision : report.decisions) {
    EXPECT_FALSE(decision.offloaded);
    EXPECT_EQ(decision.model_name, driver->config().large_model);
  }
}

// Offloaded completions must feed the gain EMAs (RecordUsage through the
// shared manager): after a run with offloads, at least one surviving example
// carries a gain EMA that per-use accounting has moved.
TEST(ServingDriverLifecycleTest, OffloadedCompletionsFeedGainAccounting) {
  const std::vector<Request> requests = SmallWorkload();
  ModelCatalog catalog;
  DriverConfig config;
  config.batch_window = 32;
  config.cache.num_shards = 4;
  const auto driver = MakeDriverWithConfig(catalog, config);
  const DriverReport report = driver->Run(requests);
  ASSERT_GT(report.offloaded_requests, 0u);

  // Fresh examples start at exactly 1 - response_quality; per-use EMA updates
  // move accessed examples off that initial value.
  size_t moved = 0;
  for (uint64_t id : driver->cache().AllIds()) {
    Example example;
    ASSERT_TRUE(driver->cache().Snapshot(id, &example));
    if (example.access_count > 0 &&
        std::abs(example.replay_gain_ema - (1.0 - example.response_quality)) > 1e-12) {
      ++moved;
    }
  }
  EXPECT_GT(moved, 0u);
}

}  // namespace
}  // namespace iccache
