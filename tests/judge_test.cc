#include "src/judge/judge.h"

#include <vector>

#include <gtest/gtest.h>

#include "src/common/stats.h"

namespace iccache {
namespace {

TEST(PairwiseJudgeTest, CompareOnceStaysOnLikertScale) {
  PairwiseJudge judge;
  for (int i = 0; i < 200; ++i) {
    const int s = judge.CompareOnce(0.5, 0.5, i % 2 == 0);
    EXPECT_GE(s, -3);
    EXPECT_LE(s, 3);
  }
}

TEST(PairwiseJudgeTest, ClearWinnerGetsExtremeScore) {
  PairwiseJudge judge;
  RunningStat scores;
  for (int i = 0; i < 200; ++i) {
    scores.Add(judge.Compare(0.95, 0.05));
  }
  EXPECT_GT(scores.mean(), 2.0);
  RunningStat reversed;
  for (int i = 0; i < 200; ++i) {
    reversed.Add(judge.Compare(0.05, 0.95));
  }
  EXPECT_LT(reversed.mean(), -2.0);
}

TEST(PairwiseJudgeTest, EqualQualityAveragesToZero) {
  PairwiseJudge judge;
  RunningStat scores;
  for (int i = 0; i < 500; ++i) {
    scores.Add(judge.Compare(0.6, 0.6));
  }
  EXPECT_NEAR(scores.mean(), 0.0, 0.08);
}

TEST(PairwiseJudgeTest, OrderDebiasingCancelsPositionPreference) {
  // With the full protocol, a raw order bias must not shift the average.
  JudgeConfig config;
  config.order_bias = 1.0;  // exaggerated position bias
  PairwiseJudge judge(config);
  RunningStat scores;
  for (int i = 0; i < 500; ++i) {
    scores.Add(judge.Compare(0.5, 0.5));
  }
  EXPECT_NEAR(scores.mean(), 0.0, 0.1);
}

TEST(PairwiseJudgeTest, SingleOrderComparisonShowsBias) {
  JudgeConfig config;
  config.order_bias = 1.0;
  config.rater_noise = 0.3;
  PairwiseJudge judge(config);
  RunningStat first_position;
  for (int i = 0; i < 500; ++i) {
    first_position.Add(judge.CompareOnce(0.5, 0.5, /*a_first=*/true));
  }
  EXPECT_GT(first_position.mean(), 0.4);
}

TEST(PairwiseJudgeTest, MonotoneInQualityGap) {
  PairwiseJudge judge;
  RunningStat small_gap;
  RunningStat large_gap;
  for (int i = 0; i < 300; ++i) {
    small_gap.Add(judge.Compare(0.55, 0.5));
    large_gap.Add(judge.Compare(0.75, 0.5));
  }
  EXPECT_GT(large_gap.mean(), small_gap.mean());
}

TEST(SideBySideStatsTest, CountsWinsTiesLosses) {
  SideBySideStats stats(0.3);
  stats.Add(1.0);   // win
  stats.Add(0.1);   // tie
  stats.Add(-0.1);  // tie
  stats.Add(-2.0);  // loss
  EXPECT_EQ(stats.count(), 4u);
  EXPECT_NEAR(stats.win_fraction(), 0.25, 1e-9);
  EXPECT_NEAR(stats.tie_fraction(), 0.5, 1e-9);
  EXPECT_NEAR(stats.loss_fraction(), 0.25, 1e-9);
  // (1 win + 0.5 * 2 ties) / 4 = 0.5.
  EXPECT_NEAR(stats.win_rate(), 0.5, 1e-9);
  EXPECT_NEAR(stats.mean_score(), -0.25, 1e-9);
}

TEST(SideBySideStatsTest, EmptyDefaultsToParity) {
  SideBySideStats stats;
  EXPECT_EQ(stats.win_rate(), 0.5);
  EXPECT_EQ(stats.mean_score(), 0.0);
}

TEST(SideBySideStatsTest, ExactTieBandBoundary) {
  SideBySideStats stats(0.3);
  stats.Add(0.3);   // exactly at band edge -> tie
  stats.Add(-0.3);  // tie
  EXPECT_NEAR(stats.tie_fraction(), 1.0, 1e-9);
}

TEST(JudgeProtocolTest, EquivalentModelsYieldFiftyPercentWinRate) {
  PairwiseJudge judge;
  SideBySideStats stats;
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const double quality = rng.Uniform(0.3, 0.9);
    stats.Add(judge.Compare(quality, quality));
  }
  EXPECT_NEAR(stats.win_rate(), 0.5, 0.05);
}

TEST(JudgeProtocolTest, ConsistentQualityEdgeYieldsMajorityWinRate) {
  PairwiseJudge judge;
  SideBySideStats stats;
  Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    const double quality = rng.Uniform(0.3, 0.75);
    stats.Add(judge.Compare(quality + 0.06, quality));
  }
  EXPECT_GT(stats.win_rate(), 0.6);
  EXPECT_LT(stats.win_rate(), 0.95);
}

TEST(RaterAgreementTest, SelfAgreementExceedsCrossAgreement) {
  const auto raters = Table4Raters();
  const RaterProfile& pro = raters[2];     // Gemini-1.5-Pro
  const RaterProfile& human = raters[4];   // Human
  const double self = RaterAgreement(pro, pro, 4000, 11);
  const double cross = RaterAgreement(pro, human, 4000, 11);
  EXPECT_GT(self, cross);
}

TEST(RaterAgreementTest, LlmJudgesAgreeMoreThanHumans) {
  // Table 4's headline: LLM raters align with each other better than human
  // raters align among themselves.
  const auto raters = Table4Raters();
  const double llm_llm = RaterAgreement(raters[2], raters[3], 4000, 12);
  const double human_human = RaterAgreement(raters[4], raters[4], 4000, 12);
  // Human self-agreement uses the noisy-human profile twice, which is the
  // paper's 63% human-human number.
  EXPECT_GT(llm_llm, human_human);
}

TEST(RaterAgreementTest, AgreementInPlausibleRange) {
  const auto raters = Table4Raters();
  for (size_t i = 0; i < raters.size(); ++i) {
    for (size_t j = i; j < raters.size(); ++j) {
      const double agreement = RaterAgreement(raters[i], raters[j], 3000, 13 + i * 7 + j);
      EXPECT_GT(agreement, 0.5) << raters[i].name << " vs " << raters[j].name;
      EXPECT_LT(agreement, 0.95) << raters[i].name << " vs " << raters[j].name;
    }
  }
}

TEST(Table4RatersTest, FiveRatersWithHumanNoisiest) {
  const auto raters = Table4Raters();
  ASSERT_EQ(raters.size(), 5u);
  double max_llm_noise = 0.0;
  for (size_t i = 0; i + 1 < raters.size(); ++i) {
    max_llm_noise = std::max(max_llm_noise, raters[i].noise);
  }
  EXPECT_GT(raters.back().noise, max_llm_noise);
  EXPECT_EQ(raters.back().name, "Human");
}

class JudgeGapSweep : public ::testing::TestWithParam<double> {};

TEST_P(JudgeGapSweep, WinRateMonotoneInGap) {
  const double gap = GetParam();
  PairwiseJudge judge;
  SideBySideStats stats;
  Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    const double quality = rng.Uniform(0.2, 0.7);
    stats.Add(judge.Compare(quality + gap, quality));
  }
  if (gap >= 0.10) {
    EXPECT_GT(stats.win_rate(), 0.75);
  } else if (gap >= 0.03) {
    EXPECT_GT(stats.win_rate(), 0.55);
  } else {
    EXPECT_NEAR(stats.win_rate(), 0.5, 0.08);
  }
}

INSTANTIATE_TEST_SUITE_P(Gaps, JudgeGapSweep, ::testing::Values(0.0, 0.03, 0.05, 0.10, 0.20));

}  // namespace
}  // namespace iccache
