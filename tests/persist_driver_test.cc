// Driver-level persistence tests (concurrency label; runs under TSan):
//
//  * restore-then-serve determinism — a driver restored from a snapshot
//    produces BYTE-IDENTICAL decisions to the uninterrupted driver, at 1 and
//    8 threads, HNSW backend, with the full lifecycle (admission, gain
//    accounting, maintenance, eviction, off-peak replay) enabled;
//  * checkpoint-while-serving — snapshot encoding runs concurrently with
//    store churn (the TSan-verified surface);
//  * kill-between-checkpoints crash recovery through the driver's periodic
//    checkpointer.
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/thread_pool.h"
#include "src/core/sharded_cache.h"
#include "src/persist/pool_codec.h"
#include "src/persist/snapshot.h"
#include "src/serving/driver.h"
#include "src/workload/dataset.h"

namespace iccache {
namespace {

constexpr uint64_t kSeed = 0x9e5157ull;

class PersistDriverTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& tag) {
    const std::string path = testing::TempDir() + "iccache_pdriver_" + tag + "_" +
                             std::to_string(::getpid()) + ".snap";
    paths_.push_back(path);
    return path;
  }

  void TearDown() override {
    for (const std::string& path : paths_) {
      std::remove(path.c_str());
      std::remove((path + ".tmp").c_str());
    }
  }

  std::vector<std::string> paths_;
};

DatasetProfile SmallProfile() {
  DatasetProfile profile = GetDatasetProfile(DatasetId::kLmsysChat);
  profile.example_pool_size = 300;
  profile.num_topics = 60;
  return profile;
}

std::vector<Request> Workload(size_t approx_requests) {
  TraceConfig trace;
  trace.kind = TraceKind::kPoisson;
  trace.mean_rps = 4.0;
  trace.duration_s = static_cast<double>(approx_requests) / trace.mean_rps;
  trace.seed = kSeed ^ 0x7ace;
  return ServingDriver::MakeWorkload(SmallProfile(), trace, kSeed ^ 0x9e4);
}

// Full-lifecycle configuration on the acceptance surface: HNSW stage-1,
// admission + maintenance + eviction + off-peak replay all active, cadences
// tightened so every lifecycle path fires within a short trace.
DriverConfig LifecycleConfig(size_t num_threads) {
  DriverConfig config;
  config.num_threads = num_threads;
  config.batch_window = 32;
  config.cache.num_shards = 4;
  config.cache.cache.retrieval.kind = RetrievalBackendKind::kHnsw;
  config.cache.cache.capacity_bytes = 96 * 1024;  // tight: forces eviction
  config.manager.decay_interval_s = 20.0;
  config.replay_min_interval_s = 30.0;
  config.replay_load_threshold = 1e9;  // saturated sim cluster: keep replay on
  config.seed = kSeed;
  return config;
}

std::unique_ptr<ServingDriver> MakeDriver(const ModelCatalog& catalog, DriverConfig config,
                                          size_t seed_pool = 200) {
  auto driver = std::make_unique<ServingDriver>(config, &catalog);
  QueryGenerator seeder(SmallProfile(), kSeed ^ 0x5eedb);
  for (size_t i = 0; i < seed_pool; ++i) {
    driver->SeedExample(seeder.Next(), 0.0);
  }
  return driver;
}

void ExpectSameDecisions(const std::vector<DriverDecision>& a,
                         const std::vector<DriverDecision>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].request_id, b[i].request_id) << "at " << i;
    EXPECT_EQ(a[i].model_name, b[i].model_name) << "at " << i;
    EXPECT_EQ(a[i].offloaded, b[i].offloaded) << "at " << i;
    EXPECT_EQ(a[i].num_examples, b[i].num_examples) << "at " << i;
    // Byte-identical: the generated latent quality is a bit-for-bit match,
    // which only holds if every RNG stream and adaptive weight resumed
    // exactly.
    EXPECT_EQ(a[i].latent_quality, b[i].latent_quality) << "at " << i;
  }
}

// The acceptance criterion: driver B snapshots after the prefix; a fresh
// driver C restores and serves the suffix; its decisions must be
// byte-identical to uninterrupted driver A serving the same suffix — at any
// thread count.
TEST_F(PersistDriverTest, RestoredPoolServesIdenticallyHnswFullLifecycle) {
  const std::vector<Request> requests = Workload(480);
  const size_t split = 256;  // batch-window multiple
  const std::vector<Request> prefix(requests.begin(), requests.begin() + split);
  const std::vector<Request> suffix(requests.begin() + split, requests.end());
  ModelCatalog catalog;

  for (size_t threads : {size_t{1}, size_t{8}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const std::string path = TempPath("determinism_t" + std::to_string(threads));

    // A: uninterrupted — keeps its pool in memory across the two segments.
    auto driver_a = MakeDriver(catalog, LifecycleConfig(threads));
    const DriverReport report_a1 = driver_a->Run(prefix);
    ASSERT_GT(report_a1.maintenance_runs, 0u);
    ASSERT_GT(report_a1.replay_passes, 0u);
    const DriverReport report_a2 = driver_a->Run(suffix);

    // B: identical up to the split, then snapshot + "process exit".
    auto driver_b = MakeDriver(catalog, LifecycleConfig(threads));
    const DriverReport report_b1 = driver_b->Run(prefix);
    ExpectSameDecisions(report_a1.decisions, report_b1.decisions);
    ASSERT_TRUE(driver_b->SaveSnapshot(path).ok());
    const int64_t bytes_at_snapshot = driver_b->cache().used_bytes();
    driver_b.reset();

    // C: restarted process, warm start from the snapshot.
    DriverConfig config_c = LifecycleConfig(threads);
    config_c.snapshot_path = path;
    config_c.restore_on_start = true;
    auto driver_c = std::make_unique<ServingDriver>(config_c, &catalog);  // NO re-seeding
    ASSERT_TRUE(driver_c->restore_status().ok()) << driver_c->restore_status().ToString();
    ASSERT_TRUE(driver_c->restored_from_snapshot());
    // HNSW happy path: native graph load, no rebuild; bytes replay exactly.
    EXPECT_TRUE(driver_c->restore_report().native_index_load);
    EXPECT_EQ(driver_c->cache().used_bytes(), bytes_at_snapshot);

    const DriverReport report_c = driver_c->Run(suffix);
    ExpectSameDecisions(report_a2.decisions, report_c.decisions);
    EXPECT_EQ(report_a2.offloaded_requests, report_c.offloaded_requests);
    EXPECT_EQ(report_a2.admitted_examples, report_c.admitted_examples);
    EXPECT_EQ(report_a2.evicted_examples, report_c.evicted_examples);
    EXPECT_EQ(report_a2.maintenance_runs, report_c.maintenance_runs);
    EXPECT_EQ(report_a2.replay_passes, report_c.replay_passes);
    EXPECT_EQ(driver_a->cache().used_bytes(), driver_c->cache().used_bytes());
    EXPECT_EQ(driver_a->cache().AllIds(), driver_c->cache().AllIds());
  }
}

// Thread-count invariance of the restored path: restoring the same snapshot
// and serving at 1 vs 8 threads yields identical decisions.
TEST_F(PersistDriverTest, RestoredDriverIsThreadCountInvariant) {
  const std::vector<Request> requests = Workload(320);
  const size_t split = 160;
  const std::vector<Request> prefix(requests.begin(), requests.begin() + split);
  const std::vector<Request> suffix(requests.begin() + split, requests.end());
  ModelCatalog catalog;
  const std::string path = TempPath("thread_invariance");

  auto writer = MakeDriver(catalog, LifecycleConfig(4));
  writer->Run(prefix);
  ASSERT_TRUE(writer->SaveSnapshot(path).ok());
  writer.reset();

  std::vector<DriverReport> reports;
  for (size_t threads : {size_t{1}, size_t{8}}) {
    DriverConfig config = LifecycleConfig(threads);
    config.snapshot_path = path;
    config.restore_on_start = true;
    ServingDriver driver(config, &catalog);
    ASSERT_TRUE(driver.restored_from_snapshot());
    reports.push_back(driver.Run(suffix));
  }
  ExpectSameDecisions(reports[0].decisions, reports[1].decisions);
}

// Checkpoint-while-serving: one thread repeatedly encodes + atomically
// writes pool snapshots while a ThreadPool churns admissions, mutations,
// removals, and searches against the same sharded store. TSan must see no
// races (every example is copied out under its shard lock).
TEST_F(PersistDriverTest, ConcurrentCheckpointWhileServing) {
  const std::string path = TempPath("concurrent");
  auto embedder = std::make_shared<HashingEmbedder>();
  ShardedCacheConfig config;
  config.num_shards = 8;
  config.cache.retrieval.kind = RetrievalBackendKind::kHnsw;
  ShardedExampleCache cache(embedder, config);

  // Seed so early checkpoints see a populated pool.
  for (uint64_t i = 0; i < 64; ++i) {
    Request request;
    request.id = i;
    request.text = "seed example text " + std::to_string(i);
    request.input_tokens = 24;
    cache.Put(request, "resp", 0.7, 0.9, 40, 0.0);
  }

  std::atomic<bool> stop{false};
  std::atomic<size_t> checkpoints{0};
  std::thread checkpointer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      SnapshotWriter writer;
      EncodePoolSections(cache, {}, /*sim_time=*/0.0, &writer);
      ASSERT_TRUE(writer.WriteToFile(path).ok());
      checkpoints.fetch_add(1, std::memory_order_relaxed);
    }
  });

  {
    ThreadPool pool(4);
    for (int worker = 0; worker < 4; ++worker) {
      pool.Submit([&cache, worker] {
        Rng rng(kSeed + static_cast<uint64_t>(worker));
        for (int i = 0; i < 400; ++i) {
          Request request;
          request.id = 10000 + static_cast<uint64_t>(worker) * 1000 + i;
          request.text = "worker " + std::to_string(worker) + " churn " + std::to_string(i);
          request.input_tokens = 16 + i % 32;
          const uint64_t id = cache.Put(request, "resp", rng.Uniform(), 0.8, 30, 1.0 * i);
          if (id != 0 && i % 3 == 0) {
            cache.UpdateExample(id, [](Example& example) { example.replay_gain_ema += 0.1; });
          }
          if (id != 0 && i % 7 == 0) {
            cache.Remove(id);
          }
          cache.FindSimilar(request, 5);
        }
      });
    }
    pool.Wait();
  }
  stop.store(true, std::memory_order_release);
  checkpointer.join();
  ASSERT_GT(checkpoints.load(), 0u);

  // The LAST MID-CHURN snapshot must be internally consistent — the export
  // is one cut, so the meta byte/record counts agree with the records, and
  // every id the restored (natively loaded) index returns resolves to an
  // example. A torn cut would leave records the graph image lacks (silently
  // unretrievable) or ids the records lack.
  {
    SnapshotReader mid_reader;
    ASSERT_TRUE(mid_reader.Open(path).ok());
    PoolMeta meta;
    ASSERT_TRUE(DecodePoolMeta(mid_reader, &meta).ok());
    uint64_t walked = 0;
    int64_t walked_bytes = 0;
    ASSERT_TRUE(ForEachSnapshotExample(mid_reader, [&](const Example& example,
                                                       const std::vector<float>& embedding) {
      (void)embedding;
      ++walked;
      walked_bytes += example.SizeBytes();
    }).ok());
    EXPECT_EQ(walked, meta.example_count);
    EXPECT_EQ(walked_bytes, meta.used_bytes);

    ShardedExampleCache mid_restored(embedder, config);
    PoolRestoreReport mid_report;
    ASSERT_TRUE(DecodePoolSections(mid_reader, &mid_restored, {}, &mid_report).ok());
    ASSERT_TRUE(mid_report.native_index_load);
    EXPECT_EQ(mid_restored.size(), meta.example_count);
    EXPECT_EQ(mid_restored.used_bytes(), meta.used_bytes);
    for (uint64_t q = 0; q < 32; ++q) {
      Request probe;
      probe.id = 90000 + q;
      probe.text = "worker 2 churn " + std::to_string(q * 9);
      for (const SearchResult& result : mid_restored.FindSimilar(probe, 8)) {
        Example example;
        EXPECT_TRUE(mid_restored.Snapshot(result.id, &example))
            << "index returned id " << result.id << " with no example record";
      }
    }
  }

  // The final published snapshot is complete and restorable.
  SnapshotWriter final_writer;
  EncodePoolSections(cache, {}, 0.0, &final_writer);
  ASSERT_TRUE(final_writer.WriteToFile(path).ok());
  ShardedExampleCache restored(embedder, config);
  SnapshotReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  PoolRestoreReport report;
  ASSERT_TRUE(DecodePoolSections(reader, &restored, {}, &report).ok());
  EXPECT_EQ(restored.size(), cache.size());
  EXPECT_EQ(restored.used_bytes(), cache.used_bytes());
}

// Periodic checkpoints through the driver + kill-between-checkpoints: a torn
// staging file from the interrupted NEXT checkpoint must not prevent
// restoring the last published one.
TEST_F(PersistDriverTest, PeriodicCheckpointsSurviveTornNextWrite) {
  const std::string path = TempPath("periodic");
  ModelCatalog catalog;
  DriverConfig config = LifecycleConfig(2);
  config.snapshot_path = path;
  config.checkpoint_interval_s = 15.0;  // trace seconds; trace spans ~120 s

  auto driver = MakeDriver(catalog, config);
  const DriverReport report = driver->Run(Workload(480));
  ASSERT_GT(report.checkpoints_taken, 1u);
  ASSERT_GE(report.checkpoint_p99_ms, report.checkpoint_p50_ms);
  driver.reset();

  // What the last published checkpoint recorded (it was taken mid-trace, so
  // it need not match the end-of-run pool).
  SnapshotReader published;
  ASSERT_TRUE(published.Open(path).ok());
  PoolMeta meta;
  ASSERT_TRUE(DecodePoolMeta(published, &meta).ok());

  // Crash mid-way through the checkpoint AFTER the last published one.
  {
    std::FILE* f = std::fopen((path + ".tmp").c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("torn half-written checkpoint", f);
    std::fclose(f);
  }

  DriverConfig recovered_config = LifecycleConfig(2);
  recovered_config.snapshot_path = path;
  recovered_config.restore_on_start = true;
  ServingDriver recovered(recovered_config, &catalog);
  ASSERT_TRUE(recovered.restore_status().ok()) << recovered.restore_status().ToString();
  ASSERT_TRUE(recovered.restored_from_snapshot());
  EXPECT_EQ(recovered.cache().size(), meta.example_count);
  EXPECT_EQ(recovered.cache().used_bytes(), meta.used_bytes);
  EXPECT_GT(recovered.restore_report().sim_time, 0.0);
}

// restore_on_start with no file is a cold start, not an error; with a
// corrupted file it surfaces the failure and serves cold.
TEST_F(PersistDriverTest, RestoreOnStartColdAndCorrupt) {
  ModelCatalog catalog;
  {
    DriverConfig config = LifecycleConfig(1);
    config.snapshot_path = TempPath("nonexistent");
    config.restore_on_start = true;
    ServingDriver driver(config, &catalog);
    EXPECT_TRUE(driver.restore_status().ok());
    EXPECT_FALSE(driver.restored_from_snapshot());
    EXPECT_EQ(driver.cache().size(), 0u);
  }
  {
    const std::string path = TempPath("garbage");
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("this is not a snapshot", f);
    std::fclose(f);
    DriverConfig config = LifecycleConfig(1);
    config.snapshot_path = path;
    config.restore_on_start = true;
    ServingDriver driver(config, &catalog);
    EXPECT_FALSE(driver.restore_status().ok());
    EXPECT_FALSE(driver.restored_from_snapshot());
  }
}

}  // namespace
}  // namespace iccache
