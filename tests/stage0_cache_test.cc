// Stage-0 response tier (concurrency label; runs under TSan):
//
//  * hit semantics — threshold decision, TTL staleness, quality-feedback
//    invalidation, threshold learning from probe-sampled counterfactuals;
//  * the three latent-bug regressions fixed by the promotion: unbounded /
//    duplicate-accepting inserts, the -1.0 NearestSimilarity sentinel, and
//    the redundant re-embedding on every probe;
//  * driver determinism — stage-0 decisions are byte-identical at 1 vs 8
//    threads and 1 vs 4 commit lanes on a duplicate-heavy trace;
//  * snapshot -> restore -> serve parity with the stage-0 section included.
#include "src/core/stage0_cache.h"

#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/serving/driver.h"
#include "src/workload/dataset.h"

namespace iccache {
namespace {

constexpr uint64_t kSeed = 0x57a9e5ull;

std::shared_ptr<const Embedder> SharedEmbedder() {
  return std::make_shared<HashingEmbedder>();
}

Request MakeRequest(uint64_t id, const std::string& text, int input_tokens = 16) {
  Request req;
  req.id = id;
  req.text = text;
  req.input_tokens = input_tokens;
  return req;
}

Stage0Config FlatConfig() {
  Stage0Config config;
  config.enabled = true;
  config.learn_threshold = false;
  config.min_admit_quality = 0.0;
  config.retrieval.kind = RetrievalBackendKind::kFlat;
  return config;
}

// --- Hit semantics ----------------------------------------------------------

TEST(Stage0CacheTest, ExactDuplicateHitsAboveThreshold) {
  Stage0ResponseCache cache(SharedEmbedder(), FlatConfig());
  const Request stored = MakeRequest(1, "what is the boiling point of water");
  ASSERT_NE(cache.Put(stored, 0.9, 120), 0u);
  const auto probe = cache.Probe(MakeRequest(2, stored.text), 0.0);
  ASSERT_TRUE(probe.has_value());
  EXPECT_NEAR(probe->similarity, 1.0, 1e-5);
  EXPECT_TRUE(probe->fresh);
  EXPECT_TRUE(cache.Confident(*probe));
  EXPECT_NEAR(probe->entry.response_quality, 0.9, 1e-9);
}

TEST(Stage0CacheTest, ThresholdGatesTheHitDecision) {
  Stage0ResponseCache cache(SharedEmbedder(), FlatConfig());
  cache.Put(MakeRequest(1, "alpha beta gamma delta"), 0.8, 50);
  const auto probe = cache.Probe(MakeRequest(2, "completely different words here"), 0.0);
  ASSERT_TRUE(probe.has_value());
  EXPECT_LT(probe->similarity, 0.9);
  cache.set_hit_threshold(0.95);
  EXPECT_FALSE(cache.Confident(*probe));
  cache.set_hit_threshold(probe->similarity - 0.01);
  EXPECT_TRUE(cache.Confident(*probe));
}

TEST(Stage0CacheTest, TtlStalenessAndExpireStale) {
  Stage0Config config = FlatConfig();
  config.ttl_s = 10.0;
  Stage0ResponseCache cache(SharedEmbedder(), config);
  const Request stored = MakeRequest(1, "cached answer about the weather");
  ASSERT_NE(cache.Put(stored, 0.9, 80, /*now=*/0.0), 0u);

  const auto young = cache.Probe(MakeRequest(2, stored.text), /*now=*/5.0);
  ASSERT_TRUE(young.has_value());
  EXPECT_TRUE(young->fresh);
  EXPECT_TRUE(cache.Confident(*young));

  // Past the TTL the entry still surfaces (nearest neighbour) but is marked
  // stale, so the hit decision fails regardless of similarity.
  const auto old = cache.Probe(MakeRequest(3, stored.text), /*now=*/25.0);
  ASSERT_TRUE(old.has_value());
  EXPECT_FALSE(old->fresh);
  EXPECT_FALSE(cache.Confident(*old));

  EXPECT_EQ(cache.ExpireStale(/*now=*/25.0), 1u);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.used_bytes(), 0);
}

TEST(Stage0CacheTest, QualityFeedbackInvalidatesBadEntries) {
  Stage0ResponseCache cache(SharedEmbedder(), FlatConfig());  // invalidate below 0.30
  const uint64_t id = cache.Put(MakeRequest(1, "stale answer"), 0.8, 60);
  ASSERT_NE(id, 0u);
  EXPECT_FALSE(cache.OnQualityFeedback(id, 0.75));  // fine: stays cached
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.OnQualityFeedback(id, 0.1));  // reuse went bad: evicted
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.OnQualityFeedback(id, 0.1));  // already gone
}

TEST(Stage0CacheTest, QualityGateRejectsBadResponses) {
  Stage0Config config = FlatConfig();
  config.min_admit_quality = 0.45;
  Stage0ResponseCache cache(SharedEmbedder(), config);
  EXPECT_EQ(cache.Put(MakeRequest(1, "low quality answer"), 0.2, 40), 0u);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_NE(cache.Put(MakeRequest(2, "good answer"), 0.8, 40), 0u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(Stage0CacheTest, ThresholdLearnsFromProbeFeedback) {
  Stage0Config config = FlatConfig();
  config.learn_threshold = true;
  config.threshold_grid = {0.85, 0.95};
  config.adapt_every_n_requests = 4;
  config.initial_hit_threshold = 0.90;
  config.token_saving_weight = 0.0;
  Stage0ResponseCache cache(SharedEmbedder(), config);

  // Reuse at similarity 0.90 is much worse than fresh generation: the 0.85
  // cell accumulates negative net benefit while 0.95 (which would have
  // missed) stays at zero — the stricter threshold must win.
  for (int i = 0; i < 8; ++i) {
    cache.OnHitFeedback(/*similarity=*/0.90, /*reused=*/0.2, /*fresh=*/0.9, 0);
  }
  cache.AdvanceWindow(4);
  EXPECT_DOUBLE_EQ(cache.hit_threshold(), 0.95);

  // Flip the evidence: reuse at 0.90 beats fresh — loosen back to 0.85.
  for (int i = 0; i < 64; ++i) {
    cache.OnHitFeedback(/*similarity=*/0.90, /*reused=*/0.95, /*fresh=*/0.4, 0);
  }
  cache.AdvanceWindow(4);
  EXPECT_DOUBLE_EQ(cache.hit_threshold(), 0.85);
}

TEST(Stage0CacheTest, AdaptiveStateRoundTrips) {
  Stage0Config config = FlatConfig();
  config.learn_threshold = true;
  Stage0ResponseCache cache(SharedEmbedder(), config);
  cache.OnHitFeedback(0.96, 0.9, 0.5, 120);
  cache.AdvanceWindow(300);

  Stage0ResponseCache other(SharedEmbedder(), config);
  ASSERT_TRUE(other.RestoreAdaptiveState(cache.SaveAdaptiveState()));
  EXPECT_DOUBLE_EQ(other.hit_threshold(), cache.hit_threshold());
  const Stage0AdaptiveState a = cache.SaveAdaptiveState();
  const Stage0AdaptiveState b = other.SaveAdaptiveState();
  EXPECT_EQ(a.requests_seen, b.requests_seen);
  EXPECT_EQ(a.grid_benefit, b.grid_benefit);
  EXPECT_EQ(a.grid_count, b.grid_count);

  Stage0AdaptiveState mismatched = a;
  mismatched.grid_benefit.push_back(0.0);
  EXPECT_FALSE(other.RestoreAdaptiveState(mismatched));
}

// --- Regression: the unbounded / duplicate-accepting baseline ---------------

TEST(Stage0CacheTest, DuplicateInsertsMergeKeepingBetterResponse) {
  Stage0ResponseCache cache(SharedEmbedder(), FlatConfig());
  const Request req = MakeRequest(1, "how do i reverse a linked list");
  const uint64_t first = cache.Put(req, 0.6, 90);
  ASSERT_NE(first, 0u);
  // The old baseline appended a second entry per duplicate; now the insert
  // dedupes into the existing id and upgrades the stored response.
  const uint64_t second = cache.Put(MakeRequest(2, req.text), 0.9, 110);
  EXPECT_EQ(second, first);
  EXPECT_EQ(cache.size(), 1u);
  const auto probe = cache.Probe(req, 0.0);
  ASSERT_TRUE(probe.has_value());
  EXPECT_NEAR(probe->entry.response_quality, 0.9, 1e-9);
  EXPECT_EQ(probe->entry.response_tokens, 110);

  // A worse duplicate must NOT downgrade the cached response.
  EXPECT_EQ(cache.Put(MakeRequest(3, req.text), 0.3, 10), first);
  const auto after = cache.Probe(req, 0.0);
  ASSERT_TRUE(after.has_value());
  EXPECT_NEAR(after->entry.response_quality, 0.9, 1e-9);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(Stage0CacheTest, EntryBoundIsEnforcedOnInsert) {
  Stage0Config config = FlatConfig();
  config.max_entries = 8;
  Stage0ResponseCache cache(SharedEmbedder(), config);
  for (int i = 0; i < 64; ++i) {
    cache.Put(MakeRequest(100 + i, "distinct request number " + std::to_string(i)),
              0.5 + 0.005 * i, 40);
    EXPECT_LE(cache.size(), config.max_entries);
  }
  EXPECT_GT(cache.size(), 0u);
}

TEST(Stage0CacheTest, ByteBoundEvictsWorstFirstDeterministically) {
  Stage0Config config = FlatConfig();
  config.capacity_bytes = 2048;
  config.high_watermark = 1.0;
  config.low_watermark = 0.5;
  Stage0ResponseCache a(SharedEmbedder(), config);
  Stage0ResponseCache b(SharedEmbedder(), config);
  for (int i = 0; i < 48; ++i) {
    const Request req =
        MakeRequest(200 + i, "padded request text " + std::to_string(i * 7919), 32);
    a.Put(req, 0.4 + 0.01 * i, 64);
    b.Put(req, 0.4 + 0.01 * i, 64);
    ASSERT_LE(a.used_bytes(), config.capacity_bytes);
  }
  // Deterministic ranking: two caches fed identically evict identically.
  EXPECT_EQ(a.size(), b.size());
  EXPECT_EQ(a.used_bytes(), b.used_bytes());
  std::vector<uint64_t> ids_a;
  std::vector<uint64_t> ids_b;
  a.ExportEntries([&](const Stage0Entry& e, const std::vector<float>&) {
    ids_a.push_back(e.id);
  });
  b.ExportEntries([&](const Stage0Entry& e, const std::vector<float>&) {
    ids_b.push_back(e.id);
  });
  EXPECT_EQ(ids_a, ids_b);
}

// --- Regression: the -1.0 empty-cache sentinel -------------------------------

TEST(Stage0CacheTest, NearestSimilarityIsNulloptWhenEmpty) {
  Stage0ResponseCache cache(SharedEmbedder(), FlatConfig());
  EXPECT_FALSE(cache.NearestSimilarity(MakeRequest(1, "anything")).has_value());
  EXPECT_FALSE(cache.Probe(MakeRequest(1, "anything"), 0.0).has_value());
  cache.Put(MakeRequest(2, "now it has one entry"), 0.8, 30);
  const auto nearest = cache.NearestSimilarity(MakeRequest(3, "now it has one entry"));
  ASSERT_TRUE(nearest.has_value());
  EXPECT_NEAR(*nearest, 1.0, 1e-5);
}

// --- Regression: redundant re-embedding --------------------------------------

TEST(Stage0CacheTest, EmbeddingOverloadsMatchInternalEmbedding) {
  auto embedder = SharedEmbedder();
  Stage0ResponseCache cache(embedder, FlatConfig());
  cache.Put(MakeRequest(1, "first cached request"), 0.7, 40);
  cache.Put(MakeRequest(2, "second cached request"), 0.8, 50);

  const Request query = MakeRequest(9, "second cached request");
  const std::vector<float> embedding = embedder->Embed(query.text);

  const auto by_request = cache.Probe(query, 0.0);
  const auto by_embedding = cache.Probe(embedding, 0.0);
  ASSERT_TRUE(by_request.has_value());
  ASSERT_TRUE(by_embedding.has_value());
  EXPECT_EQ(by_request->entry.id, by_embedding->entry.id);
  EXPECT_DOUBLE_EQ(by_request->similarity, by_embedding->similarity);

  const auto sim_request = cache.NearestSimilarity(query);
  const auto sim_embedding = cache.NearestSimilarity(embedding);
  ASSERT_TRUE(sim_request.has_value());
  ASSERT_TRUE(sim_embedding.has_value());
  EXPECT_DOUBLE_EQ(*sim_request, *sim_embedding);

  const auto k_by_embedding = cache.ProbeK(embedding, 2, 0.0);
  EXPECT_EQ(k_by_embedding.size(), 2u);

  // Put with a caller-computed embedding lands identically to internal embed.
  Stage0ResponseCache via_embedding(embedder, FlatConfig());
  const Request stored = MakeRequest(3, "stored through the fast path");
  via_embedding.Put(stored, embedder->Embed(stored.text), "[cached-response]", 0.9, 60,
                    0.0);
  const auto hit = via_embedding.Probe(MakeRequest(4, stored.text), 0.0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(hit->similarity, 1.0, 1e-5);
}

// --- Driver integration: determinism and persistence -------------------------

DatasetProfile SmallProfile() {
  DatasetProfile profile = GetDatasetProfile(DatasetId::kLmsysChat);
  profile.example_pool_size = 300;
  profile.num_topics = 60;
  return profile;
}

// Duplicate-heavy trace: half the tail requests repeat an earlier request's
// text verbatim (fresh ids, original arrival times) so the stage-0 tier has
// real hits to serve.
std::vector<Request> DuplicateHeavyWorkload(size_t approx_requests = 400) {
  TraceConfig trace;
  trace.kind = TraceKind::kPoisson;
  trace.mean_rps = 4.0;
  trace.duration_s = static_cast<double>(approx_requests) / trace.mean_rps;
  trace.seed = kSeed ^ 0x7ace;
  std::vector<Request> requests =
      ServingDriver::MakeWorkload(SmallProfile(), trace, kSeed ^ 0x9e4);
  Rng rng(kSeed ^ 0xd0b1e);
  for (size_t i = requests.size() / 8; i < requests.size(); ++i) {
    if (!rng.Bernoulli(0.5)) {
      continue;
    }
    const Request& source = requests[rng.UniformInt(static_cast<uint64_t>(i))];
    Request& repeat = requests[i];
    repeat.text = source.text;
    repeat.dataset = source.dataset;
    repeat.task = source.task;
    repeat.topic_id = source.topic_id;
    repeat.intent_id = source.intent_id;
    repeat.difficulty = source.difficulty;
    repeat.input_tokens = source.input_tokens;
    repeat.target_output_tokens = source.target_output_tokens;
  }
  return requests;
}

DriverConfig Stage0DriverConfig() {
  DriverConfig config;
  config.batch_window = 32;
  config.cache.num_shards = 4;
  config.cache.cache.retrieval.kind = RetrievalBackendKind::kHnsw;
  config.stage0.enabled = true;
  config.stage0.adapt_every_n_requests = 64;  // threshold moves within the trace
  config.seed = kSeed;
  return config;
}

std::unique_ptr<ServingDriver> MakeDriver(const ModelCatalog& catalog,
                                          DriverConfig config) {
  auto driver = std::make_unique<ServingDriver>(config, &catalog);
  QueryGenerator seeder(SmallProfile(), kSeed ^ 0x5eedb);
  for (size_t i = 0; i < 200; ++i) {
    driver->SeedExample(seeder.Next(), 0.0);
  }
  return driver;
}

void ExpectSameDecisions(const DriverReport& a, const DriverReport& b) {
  ASSERT_EQ(a.decisions.size(), b.decisions.size());
  for (size_t i = 0; i < a.decisions.size(); ++i) {
    EXPECT_EQ(a.decisions[i].request_id, b.decisions[i].request_id) << "at " << i;
    EXPECT_EQ(a.decisions[i].model_name, b.decisions[i].model_name) << "at " << i;
    EXPECT_EQ(a.decisions[i].offloaded, b.decisions[i].offloaded) << "at " << i;
    EXPECT_EQ(a.decisions[i].num_examples, b.decisions[i].num_examples) << "at " << i;
    EXPECT_EQ(a.decisions[i].latent_quality, b.decisions[i].latent_quality) << "at " << i;
  }
}

void ExpectSameStage0Counts(const DriverReport& a, const DriverReport& b) {
  EXPECT_EQ(a.stage0_hits, b.stage0_hits);
  EXPECT_EQ(a.stage0_probes, b.stage0_probes);
  EXPECT_EQ(a.stage0_invalidations, b.stage0_invalidations);
  EXPECT_EQ(a.stage0_admitted, b.stage0_admitted);
  EXPECT_EQ(a.stage0_tokens_saved, b.stage0_tokens_saved);
  EXPECT_EQ(a.generated_tokens, b.generated_tokens);
}

// The tentpole's concurrency acceptance: with stage-0 on, the decision
// stream (including which requests hit the response tier) is byte-identical
// across the full {1, 8} threads x {1, 4} lanes matrix.
TEST(Stage0DriverTest, DecisionsAreThreadAndLaneCountInvariant) {
  const std::vector<Request> requests = DuplicateHeavyWorkload();
  ModelCatalog catalog;
  DriverConfig config = Stage0DriverConfig();

  std::vector<DriverReport> reports;
  std::vector<double> thresholds;
  for (size_t threads : {size_t{1}, size_t{8}}) {
    for (size_t lanes : {size_t{1}, size_t{4}}) {
      config.num_threads = threads;
      config.commit_lanes = lanes;
      auto driver = MakeDriver(catalog, config);
      reports.push_back(driver->Run(requests));
      thresholds.push_back(driver->stage0().hit_threshold());
    }
  }
  for (size_t i = 1; i < reports.size(); ++i) {
    SCOPED_TRACE("variant " + std::to_string(i));
    ExpectSameDecisions(reports[0], reports[i]);
    ExpectSameStage0Counts(reports[0], reports[i]);
    EXPECT_EQ(thresholds[0], thresholds[i]);
  }
  // Non-vacuous: the tier genuinely served hits and saved generation.
  EXPECT_GT(reports[0].stage0_hits, 0u);
  EXPECT_GT(reports[0].stage0_admitted, 0u);
  EXPECT_GT(reports[0].stage0_tokens_saved, 0);
}

// Stage-0 hits cost zero generated tokens: the on-run generates strictly
// fewer tokens than the off-run over the same duplicate-heavy trace.
TEST(Stage0DriverTest, HitsEliminateGenerationCost) {
  const std::vector<Request> requests = DuplicateHeavyWorkload();
  ModelCatalog catalog;
  DriverConfig config = Stage0DriverConfig();
  config.num_threads = 4;

  const DriverReport on = MakeDriver(catalog, config)->Run(requests);
  config.stage0.enabled = false;
  const DriverReport off = MakeDriver(catalog, config)->Run(requests);

  EXPECT_GT(on.stage0_hits, 0u);
  EXPECT_EQ(off.stage0_hits, 0u);
  EXPECT_LT(on.generated_tokens, off.generated_tokens);
  // Every hit's decision row reports the response tier, not a model.
  size_t stage0_rows = 0;
  for (const DriverDecision& d : on.decisions) {
    if (d.model_name == "stage0-cache") {
      ++stage0_rows;
      EXPECT_EQ(d.num_examples, 0u);
      EXPECT_FALSE(d.offloaded);
    }
  }
  EXPECT_EQ(stage0_rows, on.stage0_hits);
}

// Snapshot -> restore -> serve parity: a driver restored mid-trace (stage-0
// section included) serves the suffix byte-identically to the uninterrupted
// driver. Without the stage-0 section the restored run would miss where the
// warm cache hits.
TEST(Stage0DriverTest, RestoredStage0ServesSuffixIdentically) {
  const std::vector<Request> requests = DuplicateHeavyWorkload(480);
  const size_t split = 256;  // batch-window multiple
  const std::vector<Request> prefix(requests.begin(), requests.begin() + split);
  const std::vector<Request> suffix(requests.begin() + split, requests.end());
  ModelCatalog catalog;
  const std::string path = testing::TempDir() + "iccache_stage0_" +
                           std::to_string(::getpid()) + ".snap";

  for (size_t threads : {size_t{1}, size_t{8}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    DriverConfig config = Stage0DriverConfig();
    config.num_threads = threads;

    auto uninterrupted = MakeDriver(catalog, config);
    const DriverReport a1 = uninterrupted->Run(prefix);
    const DriverReport a2 = uninterrupted->Run(suffix);

    auto writer = MakeDriver(catalog, config);
    const DriverReport b1 = writer->Run(prefix);
    ExpectSameDecisions(a1, b1);
    ASSERT_GT(b1.stage0_hits, 0u);  // the snapshotted cache is genuinely warm
    ASSERT_TRUE(writer->SaveSnapshot(path).ok());
    const size_t entries_at_snapshot = writer->stage0().size();
    const int64_t bytes_at_snapshot = writer->stage0().used_bytes();
    const double threshold_at_snapshot = writer->stage0().hit_threshold();
    ASSERT_GT(entries_at_snapshot, 0u);
    writer.reset();

    // Restarted process: NO re-seeding — the snapshot carries the example
    // pool AND the stage-0 section.
    auto restored = std::make_unique<ServingDriver>(config, &catalog);
    const Status restore_status = restored->RestoreSnapshot(path);
    ASSERT_TRUE(restore_status.ok()) << restore_status.ToString();
    EXPECT_EQ(restored->stage0().size(), entries_at_snapshot);
    EXPECT_EQ(restored->stage0().used_bytes(), bytes_at_snapshot);
    EXPECT_EQ(restored->stage0().hit_threshold(), threshold_at_snapshot);

    const DriverReport c2 = restored->Run(suffix);
    ExpectSameDecisions(a2, c2);
    ExpectSameStage0Counts(a2, c2);
    std::remove(path.c_str());
  }
}

}  // namespace
}  // namespace iccache
