#include "src/core/privacy.h"

#include <gtest/gtest.h>

namespace iccache {
namespace {

TEST(PiiScrubberTest, RedactsEmailAddresses) {
  PiiScrubber scrubber;
  const ScrubResult result = scrubber.Scrub("contact me at john.doe+test@example.com thanks");
  EXPECT_EQ(result.emails_removed, 1);
  EXPECT_EQ(result.text, "contact me at [EMAIL] thanks");
  EXPECT_TRUE(result.AnyPiiFound());
}

TEST(PiiScrubberTest, RedactsMultipleEmails) {
  PiiScrubber scrubber;
  const ScrubResult result = scrubber.Scrub("a@b.com and c@d.org");
  EXPECT_EQ(result.emails_removed, 2);
  EXPECT_EQ(result.text, "[EMAIL] and [EMAIL]");
}

TEST(PiiScrubberTest, RedactsPhoneNumbers) {
  PiiScrubber scrubber;
  const ScrubResult result = scrubber.Scrub("call 415-555-0199-22 now");
  EXPECT_EQ(result.phones_removed, 1);
  EXPECT_EQ(result.text, "call [PHONE] now");
}

TEST(PiiScrubberTest, RedactsSsnShapedIds) {
  PiiScrubber scrubber;
  const ScrubResult result = scrubber.Scrub("my ssn is 123-45-6789 ok");
  EXPECT_EQ(result.ids_removed, 1);
  EXPECT_EQ(result.text, "my ssn is [ID] ok");
}

TEST(PiiScrubberTest, LeavesShortNumbersAlone) {
  PiiScrubber scrubber;
  const ScrubResult result = scrubber.Scrub("the answer is 42 and pi is 3.14159");
  EXPECT_FALSE(result.AnyPiiFound());
  EXPECT_EQ(result.text, "the answer is 42 and pi is 3.14159");
}

TEST(PiiScrubberTest, LeavesPlainTextUntouched) {
  PiiScrubber scrubber;
  const std::string text = "what is the capital of france";
  EXPECT_EQ(scrubber.Scrub(text).text, text);
}

TEST(PiiScrubberTest, EmptyString) {
  PiiScrubber scrubber;
  const ScrubResult result = scrubber.Scrub("");
  EXPECT_EQ(result.text, "");
  EXPECT_FALSE(result.AnyPiiFound());
}

TEST(PiiScrubberTest, AtWithoutDomainDotNotEmail) {
  PiiScrubber scrubber;
  const ScrubResult result = scrubber.Scrub("meet @ noon");
  EXPECT_EQ(result.emails_removed, 0);
}

TEST(DecideAdmissionTest, AllowAllKeepsText) {
  PiiScrubber scrubber;
  const AdmissionDecision d =
      DecideAdmission(scrubber, CacheAdmissionMode::kAllowAll, "mail a@b.com");
  EXPECT_TRUE(d.admit);
  EXPECT_EQ(d.sanitized_text, "mail a@b.com");
}

TEST(DecideAdmissionTest, ScrubModeAdmitsSanitized) {
  PiiScrubber scrubber;
  const AdmissionDecision d = DecideAdmission(scrubber, CacheAdmissionMode::kScrub, "mail a@b.com");
  EXPECT_TRUE(d.admit);
  EXPECT_EQ(d.sanitized_text, "mail [EMAIL]");
}

TEST(DecideAdmissionTest, RejectPiiDropsOffenders) {
  PiiScrubber scrubber;
  EXPECT_FALSE(DecideAdmission(scrubber, CacheAdmissionMode::kRejectPii, "mail a@b.com").admit);
  EXPECT_TRUE(DecideAdmission(scrubber, CacheAdmissionMode::kRejectPii, "clean text").admit);
}

TEST(DecideAdmissionTest, DenyAllRejectsEverything) {
  PiiScrubber scrubber;
  EXPECT_FALSE(DecideAdmission(scrubber, CacheAdmissionMode::kDenyAll, "clean text").admit);
}

class ScrubberCaseSweep
    : public ::testing::TestWithParam<std::pair<const char*, const char*>> {};

TEST_P(ScrubberCaseSweep, ScrubsToExpected) {
  PiiScrubber scrubber;
  EXPECT_EQ(scrubber.Scrub(GetParam().first).text, GetParam().second);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ScrubberCaseSweep,
    ::testing::Values(
        std::make_pair("email me: user_1@mail.co", "email me: [EMAIL]"),
        std::make_pair("digits 1234567890 embedded", "digits [PHONE] embedded"),
        std::make_pair("id 987-65-4321 here", "id [ID] here"),
        std::make_pair("year 2024 is fine", "year 2024 is fine"),
        std::make_pair("code 12-34 not ssn", "code 12-34 not ssn")));

}  // namespace
}  // namespace iccache
