#include "src/embedding/embedder.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/mathutil.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/workload/query_generator.h"

namespace iccache {
namespace {

TEST(TokenizeWordsTest, LowercasesAndSplits) {
  const auto tokens = TokenizeWords("Hello, World! 42 foo_bar");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0], "hello");
  EXPECT_EQ(tokens[1], "world");
  EXPECT_EQ(tokens[2], "42");
  EXPECT_EQ(tokens[3], "foo");
  EXPECT_EQ(tokens[4], "bar");
}

TEST(TokenizeWordsTest, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(TokenizeWords("").empty());
  EXPECT_TRUE(TokenizeWords("!!! ,,, ...").empty());
}

TEST(HashTokenTest, DeterministicAndSeedSensitive) {
  EXPECT_EQ(HashToken("abc", 1), HashToken("abc", 1));
  EXPECT_NE(HashToken("abc", 1), HashToken("abc", 2));
  EXPECT_NE(HashToken("abc", 1), HashToken("abd", 1));
}

TEST(HashingEmbedderTest, OutputIsUnitNorm) {
  HashingEmbedder embedder;
  const auto v = embedder.Embed("what is the capital of france");
  EXPECT_EQ(v.size(), embedder.dim());
  EXPECT_NEAR(L2Norm(v), 1.0, 1e-5);
}

TEST(HashingEmbedderTest, Deterministic) {
  HashingEmbedder embedder;
  const auto a = embedder.Embed("hello world");
  const auto b = embedder.Embed("hello world");
  EXPECT_EQ(a, b);
}

TEST(HashingEmbedderTest, IdenticalTextsHaveCosineOne) {
  HashingEmbedder embedder;
  const auto a = embedder.Embed("translate this sentence to german");
  EXPECT_NEAR(CosineSimilarity(a, a), 1.0, 1e-9);
}

TEST(HashingEmbedderTest, EmptyTextFallsBackToCommonDirection) {
  HashingEmbedder embedder;
  const auto v = embedder.Embed("");
  EXPECT_NEAR(L2Norm(v), 1.0, 1e-5);
}

TEST(HashingEmbedderTest, UnrelatedTextsSitNearAnisotropyBaseline) {
  // With anisotropy gamma = 1, two texts with no shared content should land
  // near cosine 0.5 — the paper's "0.5 similarity of random request pairs".
  HashingEmbedder embedder;
  Rng rng(77);
  RunningStat sims;
  for (int i = 0; i < 200; ++i) {
    const std::string a = "qq" + std::to_string(rng.NextU64());
    const std::string b = "zz" + std::to_string(rng.NextU64());
    sims.Add(CosineSimilarity(embedder.Embed(a), embedder.Embed(b)));
  }
  EXPECT_NEAR(sims.mean(), 0.5, 0.07);
}

TEST(HashingEmbedderTest, SharedTokensRaiseSimilarity) {
  HashingEmbedder embedder;
  const auto base = embedder.Embed("alpha beta gamma delta epsilon");
  const auto close = embedder.Embed("alpha beta gamma delta zeta");
  const auto far = embedder.Embed("one two three four five");
  EXPECT_GT(CosineSimilarity(base, close), CosineSimilarity(base, far));
  EXPECT_GT(CosineSimilarity(base, close), 0.8);
}

TEST(HashingEmbedderTest, AnisotropyZeroRemovesBaseline) {
  HashingEmbedderConfig config;
  config.anisotropy = 0.0;
  HashingEmbedder embedder(config);
  Rng rng(78);
  RunningStat sims;
  for (int i = 0; i < 100; ++i) {
    const std::string a = "qq" + std::to_string(rng.NextU64());
    const std::string b = "zz" + std::to_string(rng.NextU64());
    sims.Add(CosineSimilarity(embedder.Embed(a), embedder.Embed(b)));
  }
  EXPECT_NEAR(sims.mean(), 0.0, 0.1);
}

TEST(HashingEmbedderTest, DifferentSeedsProduceDifferentSpaces) {
  HashingEmbedderConfig c1;
  c1.seed = 1;
  HashingEmbedderConfig c2;
  c2.seed = 2;
  HashingEmbedder e1(c1);
  HashingEmbedder e2(c2);
  EXPECT_NE(e1.Embed("hello"), e2.Embed("hello"));
}

TEST(HashingEmbedderTest, SameIntentParaphrasesScoreHigherThanCrossTopic) {
  // Queries generated from the same intent must embed closer than queries
  // from different topics — the geometry stage-1 retrieval relies on.
  const DatasetProfile profile = GetDatasetProfile(DatasetId::kMsMarco);
  QueryGenerator gen(profile, 42);
  HashingEmbedder embedder;

  std::vector<Request> requests = gen.Generate(400);
  RunningStat same_intent;
  RunningStat cross_topic;
  for (size_t i = 0; i < requests.size(); ++i) {
    for (size_t j = i + 1; j < std::min(requests.size(), i + 20); ++j) {
      const double sim = CosineSimilarity(embedder.Embed(requests[i].text),
                                          embedder.Embed(requests[j].text));
      if (requests[i].topic_id == requests[j].topic_id &&
          requests[i].intent_id == requests[j].intent_id) {
        same_intent.Add(sim);
      } else if (requests[i].topic_id != requests[j].topic_id) {
        cross_topic.Add(sim);
      }
    }
  }
  ASSERT_GT(same_intent.count(), 10u);
  ASSERT_GT(cross_topic.count(), 10u);
  EXPECT_GT(same_intent.mean(), cross_topic.mean() + 0.2);
  EXPECT_GT(same_intent.mean(), 0.8);
}

class EmbedderDimSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(EmbedderDimSweep, RespectsConfiguredDimension) {
  HashingEmbedderConfig config;
  config.dim = GetParam();
  HashingEmbedder embedder(config);
  const auto v = embedder.Embed("dimension check text");
  EXPECT_EQ(v.size(), GetParam());
  EXPECT_NEAR(L2Norm(v), 1.0, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Dims, EmbedderDimSweep, ::testing::Values(16u, 32u, 64u, 128u, 256u));

}  // namespace
}  // namespace iccache
