#include "src/embedding/embedder.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/mathutil.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/workload/query_generator.h"

namespace iccache {
namespace {

TEST(TokenizeWordsTest, LowercasesAndSplits) {
  const auto tokens = TokenizeWords("Hello, World! 42 foo_bar");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0], "hello");
  EXPECT_EQ(tokens[1], "world");
  EXPECT_EQ(tokens[2], "42");
  EXPECT_EQ(tokens[3], "foo");
  EXPECT_EQ(tokens[4], "bar");
}

TEST(TokenizeWordsTest, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(TokenizeWords("").empty());
  EXPECT_TRUE(TokenizeWords("!!! ,,, ...").empty());
}

TEST(HashTokenTest, DeterministicAndSeedSensitive) {
  EXPECT_EQ(HashToken("abc", 1), HashToken("abc", 1));
  EXPECT_NE(HashToken("abc", 1), HashToken("abc", 2));
  EXPECT_NE(HashToken("abc", 1), HashToken("abd", 1));
}

TEST(HashingEmbedderTest, OutputIsUnitNorm) {
  HashingEmbedder embedder;
  const auto v = embedder.Embed("what is the capital of france");
  EXPECT_EQ(v.size(), embedder.dim());
  EXPECT_NEAR(L2Norm(v), 1.0, 1e-5);
}

TEST(HashingEmbedderTest, Deterministic) {
  HashingEmbedder embedder;
  const auto a = embedder.Embed("hello world");
  const auto b = embedder.Embed("hello world");
  EXPECT_EQ(a, b);
}

TEST(HashingEmbedderTest, IdenticalTextsHaveCosineOne) {
  HashingEmbedder embedder;
  const auto a = embedder.Embed("translate this sentence to german");
  EXPECT_NEAR(CosineSimilarity(a, a), 1.0, 1e-9);
}

TEST(HashingEmbedderTest, EmptyTextFallsBackToCommonDirection) {
  HashingEmbedder embedder;
  const auto v = embedder.Embed("");
  EXPECT_NEAR(L2Norm(v), 1.0, 1e-5);
}

TEST(HashingEmbedderTest, UnrelatedTextsSitNearAnisotropyBaseline) {
  // With anisotropy gamma = 1, two texts with no shared content should land
  // near cosine 0.5 — the paper's "0.5 similarity of random request pairs".
  HashingEmbedder embedder;
  Rng rng(77);
  RunningStat sims;
  for (int i = 0; i < 200; ++i) {
    const std::string a = "qq" + std::to_string(rng.NextU64());
    const std::string b = "zz" + std::to_string(rng.NextU64());
    sims.Add(CosineSimilarity(embedder.Embed(a), embedder.Embed(b)));
  }
  EXPECT_NEAR(sims.mean(), 0.5, 0.07);
}

TEST(HashingEmbedderTest, SharedTokensRaiseSimilarity) {
  HashingEmbedder embedder;
  const auto base = embedder.Embed("alpha beta gamma delta epsilon");
  const auto close = embedder.Embed("alpha beta gamma delta zeta");
  const auto far = embedder.Embed("one two three four five");
  EXPECT_GT(CosineSimilarity(base, close), CosineSimilarity(base, far));
  EXPECT_GT(CosineSimilarity(base, close), 0.8);
}

TEST(HashingEmbedderTest, AnisotropyZeroRemovesBaseline) {
  HashingEmbedderConfig config;
  config.anisotropy = 0.0;
  HashingEmbedder embedder(config);
  Rng rng(78);
  RunningStat sims;
  for (int i = 0; i < 100; ++i) {
    const std::string a = "qq" + std::to_string(rng.NextU64());
    const std::string b = "zz" + std::to_string(rng.NextU64());
    sims.Add(CosineSimilarity(embedder.Embed(a), embedder.Embed(b)));
  }
  EXPECT_NEAR(sims.mean(), 0.0, 0.1);
}

TEST(HashingEmbedderTest, DifferentSeedsProduceDifferentSpaces) {
  HashingEmbedderConfig c1;
  c1.seed = 1;
  HashingEmbedderConfig c2;
  c2.seed = 2;
  HashingEmbedder e1(c1);
  HashingEmbedder e2(c2);
  EXPECT_NE(e1.Embed("hello"), e2.Embed("hello"));
}

TEST(HashingEmbedderTest, SameIntentParaphrasesScoreHigherThanCrossTopic) {
  // Queries generated from the same intent must embed closer than queries
  // from different topics — the geometry stage-1 retrieval relies on.
  const DatasetProfile profile = GetDatasetProfile(DatasetId::kMsMarco);
  QueryGenerator gen(profile, 42);
  HashingEmbedder embedder;

  std::vector<Request> requests = gen.Generate(400);
  RunningStat same_intent;
  RunningStat cross_topic;
  for (size_t i = 0; i < requests.size(); ++i) {
    for (size_t j = i + 1; j < std::min(requests.size(), i + 20); ++j) {
      const double sim = CosineSimilarity(embedder.Embed(requests[i].text),
                                          embedder.Embed(requests[j].text));
      if (requests[i].topic_id == requests[j].topic_id &&
          requests[i].intent_id == requests[j].intent_id) {
        same_intent.Add(sim);
      } else if (requests[i].topic_id != requests[j].topic_id) {
        cross_topic.Add(sim);
      }
    }
  }
  ASSERT_GT(same_intent.count(), 10u);
  ASSERT_GT(cross_topic.count(), 10u);
  EXPECT_GT(same_intent.mean(), cross_topic.mean() + 0.2);
  EXPECT_GT(same_intent.mean(), 0.8);
}

// The span tokenizer must produce exactly the owned-token output without
// materializing strings, including the unicode/punctuation edge cases.
TEST(TokenizeWordSpansTest, MatchesOwnedTokenizer) {
  const std::string inputs[] = {"Hello, World! 42 foo_bar", "", "  ...  ", "a",
                                "MiXeD CaSe TEXT with-dashes and_underscores 007",
                                "trailing token", "!leading punctuation"};
  std::vector<std::string_view> spans;
  for (const std::string& text : inputs) {
    const std::vector<std::string> owned = TokenizeWords(text);
    TokenizeWordSpans(text, &spans);
    ASSERT_EQ(spans.size(), owned.size()) << "input: " << text;
    for (size_t i = 0; i < owned.size(); ++i) {
      // Spans preserve original case; the owned tokenizer lowercases. The
      // hashing contract below covers case folding.
      std::string lowered(spans[i]);
      for (char& c : lowered) {
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      }
      EXPECT_EQ(lowered, owned[i]) << "input: " << text;
    }
  }
}

// HashTokenSpan folds the lowercase at hash time; HashBigramSpan hashes the
// "a_b" join incrementally. Both must equal HashToken over the materialized
// lowercase strings for any seed.
TEST(HashTokenSpanTest, MatchesMaterializedHashing) {
  for (const uint64_t seed : {uint64_t{0}, uint64_t{0x3e3d0}, uint64_t{0xdeadbeef}}) {
    EXPECT_EQ(HashTokenSpan("Hello", seed), HashToken("hello", seed));
    EXPECT_EQ(HashTokenSpan("42", seed), HashToken("42", seed));
    EXPECT_EQ(HashTokenSpan("", seed), HashToken("", seed));
    EXPECT_EQ(HashBigramSpan("Foo", "BAR", seed), HashToken("foo_bar", seed));
    EXPECT_EQ(HashBigramSpan("a", "b", seed), HashToken("a_b", seed));
  }
}

// EmbedInto writes into a caller arena and must be bit-identical to Embed
// (which wraps it) — including the empty-text fallback direction.
TEST(HashingEmbedderTest, EmbedIntoMatchesEmbedExactly) {
  HashingEmbedder embedder;
  std::vector<float> arena(embedder.dim(), -1.0f);
  for (const std::string& text :
       {std::string("what is the capital of France?"), std::string(""),
        std::string("repeat Repeat REPEAT tokens tokens"), std::string("x")}) {
    const std::vector<float> reference = embedder.Embed(text);
    embedder.EmbedInto(text, arena.data());
    ASSERT_EQ(reference.size(), arena.size());
    for (size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(arena[i], reference[i]) << "text: '" << text << "' dim " << i;
    }
  }
}

// A memo hit must replay the stored embedder output byte-for-byte, and the
// hit/miss counters must follow exact-repeat structure. slots=0 disables
// memoization entirely.
TEST(EmbedMemoTest, HitsAreByteIdenticalAndBounded) {
  HashingEmbedder embedder;
  EmbedMemo memo(64);
  std::vector<float> from_memo(embedder.dim());
  std::vector<float> reference(embedder.dim());

  const std::string text = "memoized query text";
  embedder.EmbedInto(text, reference.data());
  EXPECT_FALSE(memo.EmbedInto(embedder, text, from_memo.data()));  // cold: miss
  EXPECT_TRUE(memo.EmbedInto(embedder, text, from_memo.data()));   // repeat: hit
  EXPECT_EQ(memo.hits(), 1u);
  EXPECT_EQ(memo.misses(), 1u);
  for (size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(from_memo[i], reference[i]);
  }

  // Distinct texts keep their own slots (up to capacity) and never replay a
  // wrong vector: every hit is re-checked against the reference embedding.
  for (int q = 0; q < 200; ++q) {
    const std::string unique = "unique query " + std::to_string(q);
    memo.EmbedInto(embedder, unique, from_memo.data());
    embedder.EmbedInto(unique, reference.data());
    for (size_t i = 0; i < reference.size(); ++i) {
      ASSERT_EQ(from_memo[i], reference[i]) << "q=" << q;
    }
  }

  EmbedMemo disabled(0);
  EXPECT_FALSE(disabled.EmbedInto(embedder, text, from_memo.data()));
  EXPECT_FALSE(disabled.EmbedInto(embedder, text, from_memo.data()));
  EXPECT_EQ(disabled.hits(), 0u);
}

class EmbedderDimSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(EmbedderDimSweep, RespectsConfiguredDimension) {
  HashingEmbedderConfig config;
  config.dim = GetParam();
  HashingEmbedder embedder(config);
  const auto v = embedder.Embed("dimension check text");
  EXPECT_EQ(v.size(), GetParam());
  EXPECT_NEAR(L2Norm(v), 1.0, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Dims, EmbedderDimSweep, ::testing::Values(16u, 32u, 64u, 128u, 256u));

}  // namespace
}  // namespace iccache
