// Unified example-lifecycle tests: the store-agnostic ExampleManager
// (admission, gain accounting, replay, maintenance) running over the
// concurrent ShardedExampleCache, sharded-vs-single-shard eviction
// invariants, automatic capacity enforcement on insert, and byte-accounting
// consistency under concurrent mutation.
#include "src/core/manager.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/thread_pool.h"
#include "src/core/example_cache.h"
#include "src/core/sharded_cache.h"
#include "src/workload/query_generator.h"

namespace iccache {
namespace {

Request MakeRequest(uint64_t id, const std::string& text) {
  Request request;
  request.id = id;
  request.text = text;
  request.input_tokens = static_cast<int>(text.size() / 4 + 1);
  return request;
}

GenerationResult FakeGeneration(double quality, int tokens = 120) {
  GenerationResult result;
  result.latent_quality = quality;
  result.output_tokens = tokens;
  return result;
}

class ShardedLifecycleFixture : public ::testing::Test {
 protected:
  ShardedLifecycleFixture()
      : gen_(GetDatasetProfile(DatasetId::kNaturalQuestions), 181),
        embedder_(std::make_shared<HashingEmbedder>()),
        store_(embedder_, MakeShardedConfig()),
        sim_(182),
        manager_(&store_, &sim_, catalog_.Get("gemma-2-27b")) {}

  static ShardedCacheConfig MakeShardedConfig() {
    ShardedCacheConfig config;
    config.num_shards = 4;
    return config;
  }

  ModelCatalog catalog_;
  QueryGenerator gen_;
  std::shared_ptr<const Embedder> embedder_;
  ShardedExampleCache store_;
  GenerationSimulator sim_;
  ExampleManager manager_;
};

TEST_F(ShardedLifecycleFixture, AdmitsAndDedupesOverShardedStore) {
  const Request req = gen_.Next();
  const uint64_t id =
      manager_.MaybeAdmit(req, FakeGeneration(0.4), 0.785, /*from_large_model=*/true, 0.0);
  ASSERT_NE(id, 0u);
  EXPECT_EQ(store_.size(), 1u);
  Example example;
  ASSERT_TRUE(store_.Snapshot(id, &example));
  EXPECT_EQ(example.response_text, "[cached-response]");

  // Near-identical request: the dedupe probe must reject it, even though the
  // duplicate lives behind a shard.
  EXPECT_EQ(manager_.MaybeAdmit(req, FakeGeneration(0.8), 0.785, true, 1.0), 0u);
  EXPECT_EQ(store_.size(), 1u);

  // Low-quality small-model response: quality gate.
  EXPECT_EQ(manager_.MaybeAdmit(gen_.Next(), FakeGeneration(0.4), 0.6,
                                /*from_large_model=*/false, 2.0),
            0u);
}

TEST_F(ShardedLifecycleFixture, PrepareCommitSplitMatchesSynchronousAdmit) {
  const Request req = gen_.Next();
  const std::vector<float> embedding = embedder_->Embed(req.text);

  PreparedLifecycleAdmission prepared = manager_.PrepareAdmission(req, &embedding);
  EXPECT_FALSE(prepared.duplicate);
  ASSERT_TRUE(prepared.admission.admit);
  const uint64_t id = manager_.CommitAdmission(req, std::move(prepared), FakeGeneration(0.8),
                                               0.785, /*from_large_model=*/true, 0.0);
  ASSERT_NE(id, 0u);

  // A second prepare now sees the duplicate; commit must refuse it.
  PreparedLifecycleAdmission duplicate = manager_.PrepareAdmission(req, &embedding);
  EXPECT_TRUE(duplicate.duplicate);
  EXPECT_EQ(manager_.CommitAdmission(req, std::move(duplicate), FakeGeneration(0.8), 0.785, true,
                                     1.0),
            0u);

  // The commit-side quality gate also holds on the split path.
  PreparedLifecycleAdmission low = manager_.PrepareAdmission(gen_.Next());
  EXPECT_EQ(manager_.CommitAdmission(gen_.Next(), std::move(low), FakeGeneration(0.3), 0.6,
                                     /*from_large_model=*/false, 2.0),
            0u);
}

TEST_F(ShardedLifecycleFixture, RecordUsageFoldsGainAcrossShards) {
  std::vector<uint64_t> ids;
  for (int i = 0; i < 16; ++i) {  // enough admissions to land on every shard
    const uint64_t id = manager_.MaybeAdmit(gen_.Next(), FakeGeneration(0.8), 0.785, true,
                                            static_cast<double>(i));
    if (id != 0) {
      ids.push_back(id);
    }
  }
  ASSERT_GE(ids.size(), 4u);

  std::vector<double> before;
  for (uint64_t id : ids) {
    Example example;
    ASSERT_TRUE(store_.Snapshot(id, &example));
    before.push_back(example.replay_gain_ema);
  }
  // Low-quality outcome at full large-model cost: G = (1-0.2)*1.0 = 0.8.
  manager_.RecordUsage(ids, /*response_quality=*/0.2, /*normalized_model_cost=*/1.0);
  for (size_t i = 0; i < ids.size(); ++i) {
    Example example;
    ASSERT_TRUE(store_.Snapshot(ids[i], &example));
    EXPECT_GT(example.replay_gain_ema, before[i]) << "example " << ids[i];
  }
}

TEST_F(ShardedLifecycleFixture, ReplayLifetimeCapHonoredAcrossShards) {
  std::vector<uint64_t> ids;
  for (int i = 0; i < 12; ++i) {
    const uint64_t id = store_.Put(gen_.Next(), "r", 0.2, 0.785, 100, 0.0);
    ASSERT_NE(id, 0u);
    ids.push_back(id);
  }
  for (int pass = 0; pass < 10; ++pass) {
    // Keep every example attractive so only the lifetime cap limits replay.
    for (uint64_t id : ids) {
      store_.UpdateExample(id, [](Example& example) {
        example.replay_gain_ema = 0.9;
        example.access_count = 40;
      });
    }
    manager_.RunReplayPass();
  }
  size_t replayed_at_cap = 0;
  for (uint64_t id : ids) {
    Example example;
    ASSERT_TRUE(store_.Snapshot(id, &example));
    EXPECT_LE(example.replay_count, manager_.config().max_replays_per_example);
    replayed_at_cap += example.replay_count == manager_.config().max_replays_per_example ? 1 : 0;
  }
  EXPECT_GT(replayed_at_cap, 0u);  // replay genuinely ran to the cap
}

TEST_F(ShardedLifecycleFixture, ReplayImprovesHotLowQualityExamplesInShards) {
  const uint64_t id = store_.Put(gen_.Next(), "r", 0.2, 0.3, 100, 0.0);
  ASSERT_NE(id, 0u);
  store_.UpdateExample(id, [](Example& example) {
    example.replay_gain_ema = 0.9;
    example.access_count = 40;
  });
  const ReplayReport report = manager_.RunReplayPass();
  EXPECT_EQ(report.replayed, 1u);
  Example example;
  ASSERT_TRUE(store_.Snapshot(id, &example));
  EXPECT_GE(example.response_quality, 0.2);
  EXPECT_EQ(example.replay_count, 1);
}

TEST_F(ShardedLifecycleFixture, MaintenanceDecaysOnInterval) {
  const uint64_t id = store_.Put(gen_.Next(), "r", 0.5, 0.785, 100, 0.0);
  store_.RecordOffload(id, 10.0);
  EXPECT_FALSE(manager_.MaybeRunMaintenance(100.0).ran);  // within the hour
  Example example;
  ASSERT_TRUE(store_.Snapshot(id, &example));
  EXPECT_NEAR(example.offload_value, 10.0, 1e-9);

  EXPECT_TRUE(manager_.MaybeRunMaintenance(3700.0).ran);
  ASSERT_TRUE(store_.Snapshot(id, &example));
  EXPECT_NEAR(example.offload_value, 9.0, 1e-9);
}

// Same admitted set and same offload-value pattern under the same byte
// budget: the sharded store's per-shard knapsack with global watermark
// accounting must stay within budget and retain survivor utility comparable
// to the single-cache knapsack (it cannot beat the global optimum; it must
// not collapse either).
TEST(ShardedEvictionInvariantsTest, ComparableSurvivorUtilityVsSingleShard) {
  auto embedder = std::make_shared<HashingEmbedder>();
  QueryGenerator gen(GetDatasetProfile(DatasetId::kLmsysChat), 183);
  std::vector<Request> requests;
  for (int i = 0; i < 120; ++i) {
    requests.push_back(gen.Next());
  }

  // Size the budget from an unbounded probe fill: room for roughly half.
  ExampleCache probe(embedder);
  for (const Request& request : requests) {
    probe.Put(request, "response", 0.8, 0.9, 60, 0.0);
  }
  const int64_t budget = probe.used_bytes() / 2;

  ExampleCacheConfig single_config;
  single_config.capacity_bytes = budget;
  single_config.high_watermark = 1e12;  // evict only when asked
  ExampleCache single(embedder, single_config);

  ShardedCacheConfig sharded_config;
  sharded_config.num_shards = 4;
  sharded_config.cache.capacity_bytes = budget;
  sharded_config.cache.high_watermark = 1e12;
  ShardedExampleCache sharded(embedder, sharded_config);

  std::vector<uint64_t> single_ids;
  std::vector<uint64_t> sharded_ids;
  for (const Request& request : requests) {
    single_ids.push_back(single.Put(request, "response", 0.8, 0.9, 60, 0.0));
    sharded_ids.push_back(sharded.Put(request, "response", 0.8, 0.9, 60, 0.0));
  }
  ASSERT_EQ(single.size(), sharded.size());  // same admitted set

  // Long-tailed offload values, identical across the two stores.
  for (size_t i = 0; i < requests.size(); ++i) {
    const double value = (i % 10 == 0) ? 50.0 : (i % 3 == 0 ? 5.0 : 0.2);
    single.RecordOffload(single_ids[i], value);
    sharded.RecordOffload(sharded_ids[i], value);
  }

  EXPECT_FALSE(single.EnforceCapacity().empty());
  EXPECT_FALSE(sharded.EnforceCapacity().empty());
  EXPECT_LE(single.used_bytes(), budget);
  EXPECT_LE(sharded.used_bytes(), budget);

  auto retained_value = [](auto& store) {
    double total = 0.0;
    for (uint64_t id : store.AllIds()) {
      Example example;
      if (store.Snapshot(id, &example)) {
        total += example.offload_value;
      }
    }
    return total;
  };
  const double single_retained = retained_value(single);
  const double sharded_retained = retained_value(sharded);
  ASSERT_GT(single_retained, 0.0);
  // Per-shard knapsack is a partitioned approximation of the global one:
  // survivor utility must be comparable, not collapsed.
  EXPECT_GE(sharded_retained, 0.6 * single_retained);
}

TEST(ShardedEvictionInvariantsTest, InsertPastWatermarkEnforcesAutomatically) {
  ShardedCacheConfig config;
  config.num_shards = 4;
  config.cache.capacity_bytes = 8 * 1024;
  ShardedExampleCache cache(std::make_shared<HashingEmbedder>(), config);
  for (uint64_t i = 1; i <= 300; ++i) {
    cache.Put(MakeRequest(i, "filler entry number " + std::to_string(i) +
                                 " with some padding text"),
              "some response body", 0.8, 0.9, 50, 0.0);
    // No caller-side EnforceCapacity: the insert path must keep the global
    // budget on its own, at every step.
    ASSERT_LE(static_cast<double>(cache.used_bytes()),
              static_cast<double>(config.cache.capacity_bytes) * config.cache.high_watermark)
        << "after insert " << i;
  }
  EXPECT_LT(cache.size(), 300u);
  EXPECT_GT(cache.evicted_total(), 0u);
}

TEST(ShardedEvictionInvariantsTest, UpdateExampleRefreshesByteAccounting) {
  ShardedExampleCache cache(std::make_shared<HashingEmbedder>(), ShardedCacheConfig{});
  const uint64_t id = cache.Put(MakeRequest(9, "byte accounting probe"), "r", 0.5, 0.9, 10, 0.0);
  const int64_t before = cache.used_bytes();
  // Replay can grow the stored response; the byte counter must follow
  // (4 bytes per token in Example::SizeBytes).
  ASSERT_TRUE(cache.UpdateExample(id, [](Example& example) { example.response_tokens += 25; }));
  EXPECT_EQ(cache.used_bytes(), before + 4 * 25);
  ASSERT_TRUE(cache.UpdateExample(id, [](Example& example) { example.response_tokens -= 25; }));
  EXPECT_EQ(cache.used_bytes(), before);
}

// Concurrent churn over the full lifecycle surface: writers admit, updaters
// fold gain EMAs, readers search + snapshot, and a maintenance thread decays
// and evicts — all at once. Afterwards the global byte counter must equal
// the exact sum of the survivors' sizes (no drift), which TSan also uses to
// police the locking of the new UpdateExample/EnforceCapacity paths.
TEST(ShardedLifecycleConcurrencyTest, ByteAccountingExactUnderConcurrentChurn) {
  ShardedCacheConfig config;
  config.num_shards = 8;
  config.cache.capacity_bytes = 64 * 1024;
  auto cache = std::make_shared<ShardedExampleCache>(std::make_shared<HashingEmbedder>(), config);

  ThreadPool pool(8);
  constexpr int kWriters = 4;
  constexpr int kPutsPerWriter = 150;
  for (int w = 0; w < kWriters; ++w) {
    pool.Submit([cache, w] {
      for (int i = 0; i < kPutsPerWriter; ++i) {
        const uint64_t rid = static_cast<uint64_t>(w) * 100000 + static_cast<uint64_t>(i) + 1;
        const uint64_t id = cache->Put(
            MakeRequest(rid, "writer " + std::to_string(w) + " item " + std::to_string(i)),
            "response body text", 0.8, 0.9, 25, 0.0);
        if (id != 0 && i % 3 == 0) {
          cache->UpdateExample(id, [](Example& example) {
            example.replay_gain_ema = 0.5 * example.replay_gain_ema + 0.1;
            example.response_tokens += 2;
          });
        }
      }
    });
  }
  for (int r = 0; r < 2; ++r) {
    pool.Submit([cache, r] {
      for (int i = 0; i < 200; ++i) {
        for (const SearchResult& result :
             cache->FindSimilar(MakeRequest(0, "writer 1 item " + std::to_string(i % 40)), 4)) {
          Example example;
          cache->Snapshot(result.id, &example);
        }
        (void)r;
      }
    });
  }
  pool.Submit([cache] {
    for (int i = 0; i < 20; ++i) {
      cache->DecayTick();
      cache->EnforceCapacity();
    }
  });
  pool.Wait();

  int64_t exact = 0;
  for (uint64_t id : cache->AllIds()) {
    Example example;
    ASSERT_TRUE(cache->Snapshot(id, &example));
    exact += example.SizeBytes();
  }
  EXPECT_EQ(cache->used_bytes(), exact);
  EXPECT_LE(cache->used_bytes(), config.cache.capacity_bytes);
}

}  // namespace
}  // namespace iccache
