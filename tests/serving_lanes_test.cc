// Sharded-commit-pipeline determinism (concurrency label; runs under TSan):
//
//  * lane-merge determinism — N commit lanes vs 1 lane produce identical
//    decisions AND identical selector adaptation (thresholds) across seeds,
//    for the flat and hnsw backends, with the full lifecycle enabled;
//  * the thread x lane matrix: {1 thread, 1 lane} == {8 threads, 4 lanes};
//  * background-vs-inline maintenance planning equivalence (the threading
//    toggle changes WHO computes the tick, never WHAT it computes);
//  * the three-bucket wall-clock split (prepare / serial / maintenance) and
//    the stall counter surfaced by the epoch scheduler.
#include "src/serving/driver.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/workload/dataset.h"

namespace iccache {
namespace {

constexpr uint64_t kSeed = 0x1a9e5ull;

DatasetProfile SmallProfile() {
  DatasetProfile profile = GetDatasetProfile(DatasetId::kLmsysChat);
  profile.example_pool_size = 300;
  profile.num_topics = 60;
  return profile;
}

std::vector<Request> SmallWorkload(size_t approx_requests = 400) {
  TraceConfig trace;
  trace.kind = TraceKind::kPoisson;
  trace.mean_rps = 4.0;
  trace.duration_s = static_cast<double>(approx_requests) / trace.mean_rps;
  trace.seed = kSeed ^ 0x7ace;
  return ServingDriver::MakeWorkload(SmallProfile(), trace, kSeed ^ 0x9e4);
}

// Full lifecycle: tight byte budget, fast decay + replay cadences so every
// maintenance path fires within the short trace.
DriverConfig LifecycleConfig(uint64_t seed) {
  DriverConfig config;
  config.batch_window = 32;
  config.cache.num_shards = 4;
  config.cache.cache.capacity_bytes = 48 * 1024;
  config.manager.decay_interval_s = 10.0;  // trace spans ~100 s of sim time
  config.replay_min_interval_s = 20.0;
  config.replay_load_threshold = 1e9;  // any load counts as off-peak
  config.seed = seed;
  return config;
}

std::unique_ptr<ServingDriver> MakeDriver(const ModelCatalog& catalog, DriverConfig config,
                                          uint64_t seed, size_t seed_pool = 300) {
  auto driver = std::make_unique<ServingDriver>(config, &catalog);
  QueryGenerator seeder(SmallProfile(), seed ^ 0x5eedb);
  for (size_t i = 0; i < seed_pool; ++i) {
    driver->SeedExample(seeder.Next(), 0.0);
  }
  return driver;
}

void ExpectSameDecisions(const DriverReport& a, const DriverReport& b) {
  ASSERT_EQ(a.decisions.size(), b.decisions.size());
  for (size_t i = 0; i < a.decisions.size(); ++i) {
    EXPECT_EQ(a.decisions[i].request_id, b.decisions[i].request_id) << "at " << i;
    EXPECT_EQ(a.decisions[i].model_name, b.decisions[i].model_name) << "at " << i;
    EXPECT_EQ(a.decisions[i].offloaded, b.decisions[i].offloaded) << "at " << i;
    EXPECT_EQ(a.decisions[i].num_examples, b.decisions[i].num_examples) << "at " << i;
    EXPECT_EQ(a.decisions[i].latent_quality, b.decisions[i].latent_quality) << "at " << i;
  }
}

void ExpectSameLifecycleCounts(const DriverReport& a, const DriverReport& b) {
  EXPECT_EQ(a.offloaded_requests, b.offloaded_requests);
  EXPECT_EQ(a.admitted_examples, b.admitted_examples);
  EXPECT_EQ(a.evicted_examples, b.evicted_examples);
  EXPECT_EQ(a.maintenance_runs, b.maintenance_runs);
  EXPECT_EQ(a.replay_passes, b.replay_passes);
  EXPECT_EQ(a.replayed_examples, b.replayed_examples);
  EXPECT_EQ(a.improved_examples, b.improved_examples);
}

// Satellite acceptance: CommitSelection lane-merge determinism. One lane vs
// four lanes must produce identical decisions and identical post-run selector
// thresholds (the lane-local accounting merges deterministically), across
// three seeds, for both the flat and the hnsw backend.
TEST(ServingLanesTest, LaneCountInvariantAcrossSeedsAndBackends) {
  const std::vector<Request> requests = SmallWorkload();
  ModelCatalog catalog;
  for (RetrievalBackendKind backend :
       {RetrievalBackendKind::kFlat, RetrievalBackendKind::kHnsw}) {
    for (uint64_t seed : std::vector<uint64_t>{kSeed, kSeed ^ 0xbeef123ull,
                                               kSeed ^ 0x5ca1ab1eull}) {
      SCOPED_TRACE(std::string(RetrievalBackendKindName(backend)) + " seed=" +
                   std::to_string(seed));
      DriverConfig config = LifecycleConfig(seed);
      config.cache.cache.retrieval.kind = backend;
      config.num_threads = 8;
      // Tighten the adaptation cadence so the threshold actually moves
      // within the trace — a frozen-but-never-adapted threshold would make
      // this test vacuous.
      config.selector.adapt_every_n_requests = 128;

      config.commit_lanes = 1;
      const auto single = MakeDriver(catalog, config, seed);
      const DriverReport single_report = single->Run(requests);

      config.commit_lanes = 4;
      const auto laned = MakeDriver(catalog, config, seed);
      const DriverReport laned_report = laned->Run(requests);

      ExpectSameDecisions(single_report, laned_report);
      ExpectSameLifecycleCounts(single_report, laned_report);
      EXPECT_EQ(single->selector().utility_threshold(), laned->selector().utility_threshold());
      EXPECT_EQ(single->cache().AllIds(), laned->cache().AllIds());
      EXPECT_EQ(single->cache().used_bytes(), laned->cache().used_bytes());
    }
  }
}

// The issue's acceptance matrix: 8-thread decisions are byte-identical to
// 1-thread across lane counts {1, 4}, with lifecycle + maintenance fully on.
TEST(ServingLanesTest, ThreadAndLaneMatrixIsByteIdentical) {
  const std::vector<Request> requests = SmallWorkload();
  ModelCatalog catalog;
  DriverConfig config = LifecycleConfig(kSeed);
  config.cache.cache.retrieval.kind = RetrievalBackendKind::kHnsw;

  std::vector<DriverReport> reports;
  for (size_t threads : {size_t{1}, size_t{8}}) {
    for (size_t lanes : {size_t{1}, size_t{4}}) {
      config.num_threads = threads;
      config.commit_lanes = lanes;
      reports.push_back(MakeDriver(catalog, config, kSeed)->Run(requests));
    }
  }
  for (size_t i = 1; i < reports.size(); ++i) {
    SCOPED_TRACE("variant " + std::to_string(i));
    ExpectSameDecisions(reports[0], reports[i]);
    ExpectSameLifecycleCounts(reports[0], reports[i]);
    ASSERT_EQ(reports[0].completions.size(), reports[i].completions.size());
    for (size_t j = 0; j < reports[0].completions.size(); ++j) {
      EXPECT_EQ(reports[0].completions[j].id, reports[i].completions[j].id);
      EXPECT_DOUBLE_EQ(reports[0].completions[j].completion_time,
                       reports[i].completions[j].completion_time);
    }
  }
  // Maintenance genuinely ran through the background scheduler.
  EXPECT_GT(reports[0].maintenance_runs, 0u);
  EXPECT_GT(reports[0].replay_passes, 0u);
  EXPECT_GT(reports[0].evicted_examples, 0u);
}

// The background thread is pure mechanism: planning a tick on the dedicated
// thread and planning it inline on the driver thread publish byte-identical
// mutation batches at the same boundary.
TEST(ServingLanesTest, BackgroundAndInlineMaintenancePlanningAreIdentical) {
  const std::vector<Request> requests = SmallWorkload();
  ModelCatalog catalog;
  DriverConfig config = LifecycleConfig(kSeed);
  config.cache.cache.retrieval.kind = RetrievalBackendKind::kHnsw;
  config.num_threads = 4;

  config.background_maintenance = true;
  const auto background = MakeDriver(catalog, config, kSeed);
  const DriverReport background_report = background->Run(requests);

  config.background_maintenance = false;
  const auto inline_mode = MakeDriver(catalog, config, kSeed);
  const DriverReport inline_report = inline_mode->Run(requests);

  ExpectSameDecisions(background_report, inline_report);
  ExpectSameLifecycleCounts(background_report, inline_report);
  EXPECT_EQ(background->cache().AllIds(), inline_mode->cache().AllIds());
  EXPECT_EQ(background->cache().used_bytes(), inline_mode->cache().used_bytes());
  EXPECT_GT(background_report.maintenance_runs, 0u);
  // Inline planning never waits on a worker.
  EXPECT_EQ(inline_report.maintenance_stalled_windows, 0u);
}

// The maintenance bucket is measured separately (satellite: maintenance time
// must no longer be silently booked as serial time) and the three buckets
// partition the wall clock.
TEST(ServingLanesTest, MaintenanceTimeIsItsOwnBucket) {
  const std::vector<Request> requests = SmallWorkload();
  ModelCatalog catalog;
  DriverConfig config = LifecycleConfig(kSeed);
  config.num_threads = 2;
  const auto driver = MakeDriver(catalog, config, kSeed);
  const DriverReport report = driver->Run(requests);

  ASSERT_GT(report.maintenance_runs, 0u);
  EXPECT_GT(report.maintenance_seconds, 0.0);  // ticks ran, so time was booked
  EXPECT_GE(report.prepare_seconds, 0.0);
  EXPECT_GE(report.serial_seconds, 0.0);
  EXPECT_NEAR(report.prepare_seconds + report.serial_seconds + report.maintenance_seconds,
              report.wall_seconds, 1e-9);
  EXPECT_LE(report.maintenance_stalled_windows,
            (report.total_requests + driver->config().batch_window - 1) /
                driver->config().batch_window);
}

// Fault bypasses (section 5) stay deterministic under the lane partition.
TEST(ServingLanesTest, FaultBypassesAreLaneCountInvariant) {
  const std::vector<Request> requests = SmallWorkload(200);
  ModelCatalog catalog;
  for (const bool selector_bypass : {true, false}) {
    DriverConfig config = LifecycleConfig(kSeed);
    config.num_threads = 8;
    config.selector_fault_bypass = selector_bypass;
    config.router_fault_bypass = !selector_bypass;

    config.commit_lanes = 1;
    const DriverReport single = MakeDriver(catalog, config, kSeed)->Run(requests);
    config.commit_lanes = 4;
    const DriverReport laned = MakeDriver(catalog, config, kSeed)->Run(requests);
    ExpectSameDecisions(single, laned);
  }
}

}  // namespace
}  // namespace iccache
