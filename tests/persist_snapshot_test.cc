// Persistence subsystem unit tests: binio primitives, snapshot container
// integrity (magic / version / CRC / truncation / crash staging), and
// whole-pool round trips over both stores and all three retrieval backends —
// including PII-scrubbed pools, tombstone-heavy HNSW graphs, and the
// component (selector / manager / proxy / router) adaptive state.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/binio.h"
#include "src/core/example_cache.h"
#include "src/core/manager.h"
#include "src/core/selector.h"
#include "src/core/service.h"
#include "src/core/sharded_cache.h"
#include "src/index/hnsw.h"
#include "src/persist/pool_codec.h"
#include "src/persist/snapshot.h"
#include "src/workload/dataset.h"
#include "src/workload/query_generator.h"

namespace iccache {
namespace {

constexpr uint64_t kSeed = 0x5a0f5eed;

// Unique temp path per test; removed in TearDown by name.
class PersistTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& tag) {
    const std::string path = testing::TempDir() + "iccache_persist_" + tag + "_" +
                             std::to_string(::getpid()) + ".snap";
    paths_.push_back(path);
    return path;
  }

  void TearDown() override {
    for (const std::string& path : paths_) {
      std::remove(path.c_str());
      std::remove((path + ".tmp").c_str());
    }
  }

  std::vector<std::string> paths_;
};

Request MakeRequest(uint64_t id, const std::string& text, uint32_t domain = 0) {
  Request request;
  request.id = id;
  request.text = text;
  request.topic_id = static_cast<uint32_t>(id % 17);
  request.intent_id = static_cast<uint32_t>(id % 53);
  request.difficulty = 0.25 + 0.5 * static_cast<double>(id % 7) / 7.0;
  request.input_tokens = 20 + static_cast<int>(id % 40);
  request.target_output_tokens = 60 + static_cast<int>(id % 90);
  request.privacy_domain = domain;
  return request;
}

// Populates a store with a mixed pool: varied text, lifecycle stats, some
// PII-bearing requests (exercising the scrub path), several privacy domains.
std::vector<uint64_t> FillStore(ExampleStore* store, size_t n, Rng* rng) {
  std::vector<uint64_t> ids;
  for (size_t i = 0; i < n; ++i) {
    Request request = MakeRequest(1000 + i,
                                  "how do i configure widget " + std::to_string(rng->NextU64() % 997) +
                                      " for pipeline stage " + std::to_string(i),
                                  static_cast<uint32_t>(i % 3));
    if (i % 11 == 0) {
      request.text += " my email is user" + std::to_string(i) + "@example.com";
    }
    PreparedAdmission prepared = store->PrepareAdmission(request);
    const uint64_t id = store->PutPrepared(request, std::move(prepared),
                                           "resp-" + std::to_string(i), rng->Uniform(0.3, 0.95),
                                           0.9, 50 + static_cast<int>(i % 60),
                                           static_cast<double>(i));
    if (id == 0) {
      continue;
    }
    ids.push_back(id);
    // Randomized lifecycle bookkeeping so the round trip covers every field.
    store->RecordAccess(id, static_cast<double>(i) + 0.5);
    store->RecordOffload(id, rng->Uniform());
    store->UpdateExample(id, [rng](Example& example) {
      example.replay_gain_ema = rng->Uniform();
      example.replay_count = static_cast<int>(rng->NextU64() % 5);
    });
  }
  return ids;
}

void ExpectExamplesEqual(const Example& a, const Example& b) {
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(a.request.id, b.request.id);
  EXPECT_EQ(a.request.dataset, b.request.dataset);
  EXPECT_EQ(a.request.task, b.request.task);
  EXPECT_EQ(a.request.text, b.request.text);
  EXPECT_EQ(a.request.topic_id, b.request.topic_id);
  EXPECT_EQ(a.request.intent_id, b.request.intent_id);
  EXPECT_DOUBLE_EQ(a.request.difficulty, b.request.difficulty);
  EXPECT_EQ(a.request.input_tokens, b.request.input_tokens);
  EXPECT_EQ(a.request.target_output_tokens, b.request.target_output_tokens);
  EXPECT_DOUBLE_EQ(a.request.arrival_time, b.request.arrival_time);
  EXPECT_EQ(a.request.privacy_domain, b.request.privacy_domain);
  EXPECT_EQ(a.response_text, b.response_text);
  EXPECT_DOUBLE_EQ(a.response_quality, b.response_quality);
  EXPECT_DOUBLE_EQ(a.source_capability, b.source_capability);
  EXPECT_EQ(a.response_tokens, b.response_tokens);
  EXPECT_EQ(a.access_count, b.access_count);
  EXPECT_DOUBLE_EQ(a.last_access_time, b.last_access_time);
  EXPECT_DOUBLE_EQ(a.admitted_time, b.admitted_time);
  EXPECT_DOUBLE_EQ(a.replay_gain_ema, b.replay_gain_ema);
  EXPECT_EQ(a.replay_count, b.replay_count);
  EXPECT_DOUBLE_EQ(a.offload_value, b.offload_value);
}

// Deep store equality: same ids, field-identical examples, exact bytes.
void ExpectStoresEqual(const ExampleStore& a, const ExampleStore& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.used_bytes(), b.used_bytes());
  const std::vector<uint64_t> ids_a = a.AllIds();
  const std::vector<uint64_t> ids_b = b.AllIds();
  ASSERT_EQ(ids_a, ids_b);
  for (uint64_t id : ids_a) {
    Example ea;
    Example eb;
    ASSERT_TRUE(a.Snapshot(id, &ea));
    ASSERT_TRUE(b.Snapshot(id, &eb));
    ea.id = eb.id = id;  // stores report global ids through Snapshot already
    ExpectExamplesEqual(ea, eb);
  }
}

void ExpectSameSearchResults(const ExampleStore& a, const ExampleStore& b,
                             const std::vector<Request>& queries, size_t k) {
  for (const Request& query : queries) {
    const auto ra = a.FindSimilar(query, k);
    const auto rb = b.FindSimilar(query, k);
    ASSERT_EQ(ra.size(), rb.size());
    for (size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(ra[i].id, rb[i].id);
      EXPECT_DOUBLE_EQ(ra[i].score, rb[i].score);
    }
  }
}

TEST(BinioTest, PrimitivesRoundTrip) {
  ByteWriter w;
  w.PutU8(0xAB);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFull);
  w.PutI64(-42);
  w.PutDouble(3.14159);
  w.PutFloat(2.5f);
  const std::string with_nul("hi\0there", 8);  // length-prefixed: NULs survive
  w.PutString(with_nul);
  w.PutFloats({1.0f, -2.0f, 0.25f});

  ByteReader r(w.bytes());
  EXPECT_EQ(r.GetU8(), 0xAB);
  EXPECT_EQ(r.GetU32(), 0xDEADBEEFu);
  EXPECT_EQ(r.GetU64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.GetI64(), -42);
  EXPECT_DOUBLE_EQ(r.GetDouble(), 3.14159);
  EXPECT_EQ(r.GetFloat(), 2.5f);
  EXPECT_EQ(r.GetString(), std::string("hi\0there", 8));
  EXPECT_EQ(r.GetFloats(), (std::vector<float>{1.0f, -2.0f, 0.25f}));
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.AtEnd());
}

TEST(BinioTest, ReaderLatchesOutOfBounds) {
  ByteWriter w;
  w.PutU32(7);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.GetU64(), 0u);  // 4 bytes available, 8 requested
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.GetU32(), 0u);  // still failed
  EXPECT_FALSE(r.ok());
}

TEST(BinioTest, Crc32KnownVector) {
  // CRC-32 of "123456789" is the classic check value 0xCBF43926.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_NE(Crc32("123456788", 9), 0xCBF43926u);
}

TEST_F(PersistTest, ContainerRejectsCorruption) {
  const std::string path = TempPath("corrupt");
  SnapshotWriter writer;
  writer.AddSection(SnapshotSection::kMeta, "meta-bytes");
  writer.AddSection(SnapshotSection::kExamples, std::string(1000, 'x'));
  ASSERT_TRUE(writer.WriteToFile(path).ok());

  const std::string image = [&] {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    std::string data;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      data.append(buf, n);
    }
    std::fclose(f);
    return data;
  }();

  {  // pristine image parses
    SnapshotReader reader;
    EXPECT_TRUE(reader.Parse(image).ok());
    EXPECT_NE(reader.Section(SnapshotSection::kExamples), nullptr);
  }
  {  // bad magic
    std::string bad = image;
    bad[0] ^= 0xFF;
    SnapshotReader reader;
    EXPECT_FALSE(reader.Parse(bad).ok());
  }
  {  // unsupported future format version
    std::string bad = image;
    bad[8] = 99;
    SnapshotReader reader;
    const Status status = reader.Parse(bad);
    EXPECT_FALSE(status.ok());
    EXPECT_NE(status.message().find("version"), std::string::npos);
  }
  {  // flipped payload bit -> section CRC mismatch
    std::string bad = image;
    bad[bad.size() - 10] ^= 0x01;
    SnapshotReader reader;
    EXPECT_FALSE(reader.Parse(bad).ok());
  }
  {  // truncation at every interesting boundary
    for (size_t cut : {size_t{3}, size_t{20}, image.size() / 2, image.size() - 1}) {
      SnapshotReader reader;
      EXPECT_FALSE(reader.Parse(image.substr(0, cut)).ok()) << "cut=" << cut;
    }
  }
}

TEST_F(PersistTest, CrashMidWritePreservesPreviousCheckpoint) {
  const std::string path = TempPath("crash");

  SnapshotWriter v1;
  v1.AddSection(SnapshotSection::kMeta, "checkpoint-1");
  ASSERT_TRUE(v1.WriteToFile(path).ok());

  // Simulate a kill mid-way through the NEXT checkpoint: the staging file
  // holds a torn half-image, the rename never happened.
  {
    std::FILE* f = std::fopen((path + ".tmp").c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("torn partial snapshot image", f);
    std::fclose(f);
  }

  SnapshotReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  ASSERT_NE(reader.Section(SnapshotSection::kMeta), nullptr);
  EXPECT_EQ(*reader.Section(SnapshotSection::kMeta), "checkpoint-1");

  // The interrupted writer retries and completes: the new image replaces the
  // old atomically.
  SnapshotWriter v2;
  v2.AddSection(SnapshotSection::kMeta, "checkpoint-2");
  ASSERT_TRUE(v2.WriteToFile(path).ok());
  SnapshotReader reader2;
  ASSERT_TRUE(reader2.Open(path).ok());
  EXPECT_EQ(*reader2.Section(SnapshotSection::kMeta), "checkpoint-2");
}

TEST_F(PersistTest, ExampleCacheRoundTripAllBackends) {
  for (RetrievalBackendKind kind : {RetrievalBackendKind::kFlat, RetrievalBackendKind::kKMeans,
                                    RetrievalBackendKind::kHnsw}) {
    SCOPED_TRACE(RetrievalBackendKindName(kind));
    const std::string path = TempPath(std::string("cache_") + RetrievalBackendKindName(kind));
    auto embedder = std::make_shared<HashingEmbedder>();
    ExampleCacheConfig config;
    config.retrieval.kind = kind;
    ExampleCache original(embedder, config);
    Rng rng(kSeed);
    FillStore(&original, 120, &rng);
    ASSERT_GT(original.size(), 100u);

    SnapshotWriter writer;
    EncodePoolSections(original, {}, /*sim_time=*/123.5, &writer);
    ASSERT_TRUE(writer.WriteToFile(path).ok());

    ExampleCache restored(embedder, config);
    SnapshotReader reader;
    ASSERT_TRUE(reader.Open(path).ok());
    PoolRestoreReport report;
    ASSERT_TRUE(DecodePoolSections(reader, &restored, {}, &report).ok());
    EXPECT_EQ(report.examples, original.size());
    EXPECT_DOUBLE_EQ(report.sim_time, 123.5);
    EXPECT_EQ(report.native_index_load, kind == RetrievalBackendKind::kHnsw);
    EXPECT_TRUE(report.next_ids_restored);

    ExpectStoresEqual(original, restored);
    // Post-restore admissions continue the exact id sequence.
    EXPECT_EQ(original.ExportNextIds(), restored.ExportNextIds());

    std::vector<Request> queries;
    for (uint64_t q = 0; q < 20; ++q) {
      queries.push_back(MakeRequest(90000 + q, "how do i configure widget " + std::to_string(q) +
                                                   " for pipeline stage 3"));
    }
    ExpectSameSearchResults(original, restored, queries, 10);
  }
}

TEST_F(PersistTest, TombstoneHeavyHnswRoundTrip) {
  const std::string path = TempPath("tombstones");
  auto embedder = std::make_shared<HashingEmbedder>();
  ExampleCacheConfig config;
  config.retrieval.kind = RetrievalBackendKind::kHnsw;
  // Keep compaction from firing so the saved graph genuinely carries
  // tombstones (the waypoint case the loader must preserve).
  config.retrieval.hnsw.min_tombstones_to_compact = 100000;
  ExampleCache original(embedder, config);
  Rng rng(kSeed ^ 1);
  const std::vector<uint64_t> ids = FillStore(&original, 200, &rng);
  std::vector<uint64_t> removed;
  for (size_t i = 0; i < ids.size(); i += 3) {
    original.Remove(ids[i]);
    removed.push_back(ids[i]);
  }
  const auto* hnsw = dynamic_cast<const HnswIndex*>(&original.index());
  ASSERT_NE(hnsw, nullptr);
  ASSERT_GT(hnsw->tombstones(), 50u);

  SnapshotWriter writer;
  EncodePoolSections(original, {}, 0.0, &writer);
  ASSERT_TRUE(writer.WriteToFile(path).ok());

  ExampleCache restored(embedder, config);
  SnapshotReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  PoolRestoreReport report;
  ASSERT_TRUE(DecodePoolSections(reader, &restored, {}, &report).ok());
  ASSERT_TRUE(report.native_index_load);

  const auto* restored_hnsw = dynamic_cast<const HnswIndex*>(&restored.index());
  ASSERT_NE(restored_hnsw, nullptr);
  EXPECT_EQ(restored_hnsw->tombstones(), hnsw->tombstones());
  ExpectStoresEqual(original, restored);

  std::vector<Request> queries;
  for (uint64_t q = 0; q < 25; ++q) {
    queries.push_back(MakeRequest(80000 + q, "pipeline stage widget query " + std::to_string(q)));
  }
  ExpectSameSearchResults(original, restored, queries, 10);
  // Tombstoned ids never come back from a restored graph.
  for (const Request& query : queries) {
    for (const SearchResult& result : restored.FindSimilar(query, 10)) {
      for (uint64_t dead : removed) {
        EXPECT_NE(result.id, dead);
      }
    }
  }
}

TEST_F(PersistTest, ShardedRoundTripExactBytesAndSearch) {
  const std::string path = TempPath("sharded");
  auto embedder = std::make_shared<HashingEmbedder>();
  ShardedCacheConfig config;
  config.num_shards = 8;
  config.cache.retrieval.kind = RetrievalBackendKind::kHnsw;
  ShardedExampleCache original(embedder, config);
  Rng rng(kSeed ^ 2);
  const std::vector<uint64_t> ids = FillStore(&original, 300, &rng);
  // Churn: removals so per-shard next-ids run ahead of max(id)+1.
  for (size_t i = 0; i < ids.size(); i += 7) {
    original.Remove(ids[i]);
  }

  SnapshotWriter writer;
  EncodePoolSections(original, {}, 42.0, &writer);
  ASSERT_TRUE(writer.WriteToFile(path).ok());

  ShardedExampleCache restored(embedder, config);
  SnapshotReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  PoolRestoreReport report;
  ASSERT_TRUE(DecodePoolSections(reader, &restored, {}, &report).ok());
  ASSERT_TRUE(report.native_index_load);
  EXPECT_TRUE(report.next_ids_restored);

  ExpectStoresEqual(original, restored);
  // Watermark accounting replayed exactly: the atomic counter equals the
  // sum of shard usage, byte for byte.
  EXPECT_EQ(original.used_bytes(), restored.used_bytes());
  EXPECT_EQ(original.ExportNextIds(), restored.ExportNextIds());

  std::vector<Request> queries;
  for (uint64_t q = 0; q < 25; ++q) {
    queries.push_back(MakeRequest(70000 + q, "configure widget " + std::to_string(3 * q)));
  }
  ExpectSameSearchResults(original, restored, queries, 10);
}

TEST_F(PersistTest, ReshardOnRestoreFallsBackAndKeepsIds) {
  const std::string path = TempPath("reshard");
  auto embedder = std::make_shared<HashingEmbedder>();
  ShardedCacheConfig config8;
  config8.num_shards = 8;
  config8.cache.retrieval.kind = RetrievalBackendKind::kFlat;
  ShardedExampleCache original(embedder, config8);
  Rng rng(kSeed ^ 3);
  FillStore(&original, 150, &rng);

  SnapshotWriter writer;
  EncodePoolSections(original, {}, 0.0, &writer);
  ASSERT_TRUE(writer.WriteToFile(path).ok());

  // Restore under HALF the shard count: ids are preserved (the shard index
  // is re-derived from the id's low bits), the index is rebuilt, and the
  // per-shard insertion counters fall back to max(id)+1.
  ShardedCacheConfig config4 = config8;
  config4.num_shards = 4;
  ShardedExampleCache restored(embedder, config4);
  SnapshotReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  PoolRestoreReport report;
  ASSERT_TRUE(DecodePoolSections(reader, &restored, {}, &report).ok());
  EXPECT_FALSE(report.native_index_load);
  EXPECT_FALSE(report.next_ids_restored);
  ExpectStoresEqual(original, restored);

  // Flat retrieval is exact, so results match across the re-shard too.
  std::vector<Request> queries;
  for (uint64_t q = 0; q < 15; ++q) {
    queries.push_back(MakeRequest(60000 + q, "widget " + std::to_string(q) + " stage"));
  }
  ExpectSameSearchResults(original, restored, queries, 10);

  // GROWING the shard count cannot preserve the snapshot's smallest ids
  // (they would collapse onto the reserved inner id 0), so it is rejected
  // cleanly rather than silently re-labelled.
  ShardedCacheConfig config16 = config8;
  config16.num_shards = 16;
  ShardedExampleCache grown(embedder, config16);
  const Status status = DecodePoolSections(reader, &grown, {}, nullptr);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition) << status.ToString();
}

TEST_F(PersistTest, RestoreRequiresEmptyStoreAndMatchingDim) {
  const std::string path = TempPath("precond");
  auto embedder = std::make_shared<HashingEmbedder>();
  ExampleCache original(embedder);
  Rng rng(kSeed ^ 4);
  FillStore(&original, 30, &rng);
  SnapshotWriter writer;
  EncodePoolSections(original, {}, 0.0, &writer);
  ASSERT_TRUE(writer.WriteToFile(path).ok());

  SnapshotReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  // Non-empty target store.
  ExampleCache occupied(embedder);
  FillStore(&occupied, 3, &rng);
  EXPECT_FALSE(DecodePoolSections(reader, &occupied, {}, nullptr).ok());
  // Mismatched embedding dimension.
  HashingEmbedderConfig dim64;
  dim64.dim = 64;
  ExampleCache wrong_dim(std::make_shared<HashingEmbedder>(dim64));
  EXPECT_FALSE(DecodePoolSections(reader, &wrong_dim, {}, nullptr).ok());
}

TEST_F(PersistTest, ComponentAdaptiveStateRoundTrip) {
  const std::string path = TempPath("components");
  auto embedder = std::make_shared<HashingEmbedder>();
  ModelCatalog catalog;
  GenerationSimulator generator(kSeed);

  ExampleCache store(embedder);
  Rng rng(kSeed ^ 5);
  FillStore(&store, 40, &rng);

  ProxyUtilityModel proxy;
  ExampleSelector selector(&store, &proxy);
  ExampleManager manager(&store, &generator, catalog.Get("gemma-2-27b"));
  std::vector<RouterArmSpec> arms(2);
  arms[0].model_name = "small";
  arms[0].normalized_cost = 0.1;
  arms[0].uses_examples = true;
  arms[1].model_name = "large";
  RequestRouter router(arms);

  // Drive every component away from its defaults.
  selector.set_utility_threshold(0.61);
  for (int i = 0; i < 40; ++i) {
    const Request request = MakeRequest(500 + i, "adapt " + std::to_string(i));
    const auto selected = selector.Select(request, catalog.Get("gemma-2-2b"), 1.0 * i);
    selector.OnFeedback(request, selected, catalog.Get("gemma-2-2b"), 0.05);
    router.ObserveLoad(0.4 + 0.01 * i);
    const RouteDecision decision = router.Route(request, selected);
    router.UpdateReward(decision, 0.7);
    ProxyFeatures features = MakeProxyFeatures(0.8, 0.7, 0.9, 0.6, true, 120);
    proxy.Update(features, 0.66);
  }
  manager.set_last_decay_time(777.0);

  PoolComponents components{&selector, &manager, &proxy, &router};
  SnapshotWriter writer;
  EncodePoolSections(store, components, 0.0, &writer);
  ASSERT_TRUE(writer.WriteToFile(path).ok());

  // Fresh components around a fresh store.
  ExampleCache store2(embedder);
  ProxyUtilityModel proxy2;
  ExampleSelector selector2(&store2, &proxy2);
  ExampleManager manager2(&store2, &generator, catalog.Get("gemma-2-27b"));
  RequestRouter router2(arms);
  PoolComponents components2{&selector2, &manager2, &proxy2, &router2};
  SnapshotReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  ASSERT_TRUE(DecodePoolSections(reader, &store2, components2, nullptr).ok());

  const SelectorAdaptiveState sa = selector.SaveAdaptiveState();
  const SelectorAdaptiveState sb = selector2.SaveAdaptiveState();
  EXPECT_DOUBLE_EQ(sa.utility_threshold, sb.utility_threshold);
  EXPECT_EQ(sa.requests_seen, sb.requests_seen);
  EXPECT_EQ(sa.grid_benefit, sb.grid_benefit);
  EXPECT_EQ(sa.grid_count, sb.grid_count);
  EXPECT_DOUBLE_EQ(manager2.last_decay_time(), 777.0);
  EXPECT_EQ(proxy.weights(), proxy2.weights());
  EXPECT_EQ(proxy.updates(), proxy2.updates());
  EXPECT_DOUBLE_EQ(router.load_ema(), router2.load_ema());
  for (size_t arm = 0; arm < router.bandit().num_arms(); ++arm) {
    EXPECT_EQ(router.bandit().arm(arm).precision(), router2.bandit().arm(arm).precision());
    EXPECT_EQ(router.bandit().arm(arm).b(), router2.bandit().arm(arm).b());
    EXPECT_EQ(router.bandit().arm(arm).updates(), router2.bandit().arm(arm).updates());
  }
  // Identical Thompson streams: the next routing decisions coincide.
  for (int i = 0; i < 10; ++i) {
    const Request request = MakeRequest(900 + i, "post-restore " + std::to_string(i));
    const RouteDecision da = router.Route(request, {});
    const RouteDecision db = router2.Route(request, {});
    EXPECT_EQ(da.arm, db.arm);
    EXPECT_EQ(da.model_name, db.model_name);
  }
}

TEST_F(PersistTest, ServiceWarmStartPreservesReplayGains) {
  const std::string path = TempPath("service");
  ModelCatalog catalog;
  GenerationSimulator generator(kSeed);
  auto embedder = std::make_shared<HashingEmbedder>();
  ServiceConfig config;
  IcCacheService service(config, &catalog, &generator, embedder);

  QueryGenerator history(GetDatasetProfile(DatasetId::kLmsysChat), kSeed ^ 9);
  for (int i = 0; i < 150; ++i) {
    service.SeedExample(history.Next(), 0.0);
  }
  for (int i = 0; i < 100; ++i) {
    service.ServeRequest(history.Next(), static_cast<double>(i));
  }
  const ReplayReport replay = service.manager().RunReplayPass();
  ASSERT_GT(replay.replayed, 0u);
  ASSERT_TRUE(service.SaveSnapshot(path).ok());

  ServiceConfig warm = config;
  warm.snapshot_path = path;
  warm.restore_on_start = true;
  GenerationSimulator generator2(kSeed);
  IcCacheService restored(warm, &catalog, &generator2, embedder);
  ASSERT_TRUE(restored.restore_status().ok()) << restored.restore_status().ToString();
  ASSERT_TRUE(restored.restored_from_snapshot());
  ExpectStoresEqual(service.cache(), restored.cache());

  // A restored service continues byte-identically to the writer.
  for (int i = 0; i < 50; ++i) {
    const Request request = MakeRequest(40000 + i, "warm start query " + std::to_string(i));
    const ServeOutcome a = service.ServeRequest(request, 1000.0 + i);
    const ServeOutcome b = restored.ServeRequest(request, 1000.0 + i);
    EXPECT_EQ(a.route.model_name, b.route.model_name);
    EXPECT_EQ(a.offloaded, b.offloaded);
    EXPECT_EQ(a.examples_used.size(), b.examples_used.size());
    EXPECT_DOUBLE_EQ(a.generation.latent_quality, b.generation.latent_quality);
    EXPECT_DOUBLE_EQ(a.observed_quality, b.observed_quality);
    EXPECT_EQ(a.admitted_example_id, b.admitted_example_id);
  }
}

TEST_F(PersistTest, DumpHelpersReadMetaAndExamples) {
  const std::string path = TempPath("meta");
  auto embedder = std::make_shared<HashingEmbedder>();
  ExampleCache store(embedder);
  Rng rng(kSeed ^ 6);
  FillStore(&store, 60, &rng);

  SnapshotWriter writer;
  EncodePoolSections(store, {}, 55.0, &writer);
  ASSERT_TRUE(writer.WriteToFile(path).ok());

  SnapshotReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  PoolMeta meta;
  ASSERT_TRUE(DecodePoolMeta(reader, &meta).ok());
  EXPECT_EQ(meta.example_count, store.size());
  EXPECT_EQ(meta.used_bytes, store.used_bytes());
  EXPECT_EQ(meta.shard_count, 1u);
  EXPECT_EQ(meta.embed_dim, embedder->dim());
  EXPECT_DOUBLE_EQ(meta.sim_time, 55.0);

  size_t seen = 0;
  int64_t bytes = 0;
  Status status = ForEachSnapshotExample(reader, [&](const Example& example,
                                                     const std::vector<float>& embedding) {
    ++seen;
    bytes += example.SizeBytes();
    EXPECT_EQ(embedding.size(), embedder->dim());
  });
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(seen, store.size());
  EXPECT_EQ(bytes, store.used_bytes());
}

}  // namespace
}  // namespace iccache
