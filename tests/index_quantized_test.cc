// Int8-quantized HNSW arena: recall regression against the float index,
// quantized GetVector error bounds, graph-image round trip (format v2), mode
// mismatch fallback, memory accounting, and rerank telemetry.
#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/mathutil.h"
#include "src/common/rng.h"
#include "src/common/simd.h"
#include "src/core/retrieval_backend.h"
#include "src/index/hnsw.h"

namespace iccache {
namespace {

std::vector<float> RandomUnitVector(Rng& rng, size_t dim) {
  std::vector<float> v(dim);
  for (auto& x : v) {
    x = static_cast<float>(rng.Normal());
  }
  NormalizeL2(v);
  return v;
}

HnswIndexConfig QuantizedConfig(size_t dim) {
  HnswIndexConfig config;
  config.dim = dim;
  config.quantize_int8 = true;
  return config;
}

TEST(HnswQuantizedTest, AddSearchRemove) {
  HnswIndexConfig config = QuantizedConfig(4);
  HnswIndex index(config);
  EXPECT_TRUE(index.Add(1, {1.0f, 0.0f, 0.0f, 0.0f}).ok());
  EXPECT_TRUE(index.Add(2, {0.0f, 1.0f, 0.0f, 0.0f}).ok());
  EXPECT_EQ(index.size(), 2u);

  const auto results = index.Search({1.0f, 0.0f, 0.0f, 0.0f}, 1);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].id, 1u);
  EXPECT_NEAR(results[0].score, 1.0, 1e-2);  // quantized storage: coarse score

  EXPECT_TRUE(index.Remove(1));
  EXPECT_EQ(index.Search({1.0f, 0.0f, 0.0f, 0.0f}, 1)[0].id, 2u);
}

TEST(HnswQuantizedTest, GetVectorErrorBoundedByHalfScale) {
  const size_t dim = 64;
  HnswIndex index(QuantizedConfig(dim));
  Rng rng(41);
  std::vector<std::vector<float>> stored;
  for (uint64_t i = 0; i < 100; ++i) {
    stored.push_back(RandomUnitVector(rng, dim));
    ASSERT_TRUE(index.Add(i, stored.back()).ok());
  }
  for (uint64_t i = 0; i < 100; ++i) {
    std::vector<float> out;
    ASSERT_TRUE(index.GetVector(i, &out));
    ASSERT_EQ(out.size(), dim);
    // Per-vector scale = max|x| / 127 <= 1/127 for unit vectors; each element
    // is off by at most half a quantization step.
    float max_abs = 0.0f;
    for (float x : stored[i]) {
      max_abs = std::max(max_abs, std::fabs(x));
    }
    const float bound = 0.5f * max_abs / 127.0f + 1e-6f;
    for (size_t d = 0; d < dim; ++d) {
      EXPECT_LE(std::fabs(out[d] - stored[i][d]), bound);
    }
  }
}

// Tentpole acceptance (10k fixture form): the quantized index with exact
// re-rank must keep recall@10 >= 0.95x the float index's recall against flat
// ground truth.
TEST(HnswQuantizedTest, RecallWithinFivePercentOfFloatIndex) {
  const size_t dim = 64;
  const size_t n = 10000;
  const size_t k = 10;
  const int queries = 100;

  HnswIndexConfig fconfig;
  fconfig.dim = dim;
  HnswIndex float_index(fconfig);
  HnswIndex quant_index(QuantizedConfig(dim));
  FlatIndex exact(dim);
  Rng rng(42);
  for (uint64_t i = 0; i < n; ++i) {
    const auto v = RandomUnitVector(rng, dim);
    ASSERT_TRUE(float_index.Add(i, v).ok());
    ASSERT_TRUE(quant_index.Add(i, v).ok());
    ASSERT_TRUE(exact.Add(i, v).ok());
  }

  size_t float_hits = 0;
  size_t quant_hits = 0;
  for (int q = 0; q < queries; ++q) {
    const auto query = RandomUnitVector(rng, dim);
    std::set<uint64_t> truth;
    for (const auto& r : exact.Search(query, k)) {
      truth.insert(r.id);
    }
    for (const auto& r : float_index.Search(query, k)) {
      float_hits += truth.count(r.id);
    }
    for (const auto& r : quant_index.Search(query, k)) {
      quant_hits += truth.count(r.id);
    }
  }
  const double float_recall = static_cast<double>(float_hits) / (queries * k);
  const double quant_recall = static_cast<double>(quant_hits) / (queries * k);
  EXPECT_GE(quant_recall, 0.95 * float_recall)
      << "quantized recall@10 = " << quant_recall << " vs float " << float_recall;
  EXPECT_GE(quant_recall, 0.95) << "absolute quantized recall@10 too low";
}

TEST(HnswQuantizedTest, RerankCountersAdvance) {
  const size_t dim = 16;
  HnswIndex index(QuantizedConfig(dim));
  Rng rng(43);
  for (uint64_t i = 0; i < 300; ++i) {
    ASSERT_TRUE(index.Add(i, RandomUnitVector(rng, dim)).ok());
  }
  const uint64_t q0 = HnswRerankQueriesTotal();
  const uint64_t c0 = HnswRerankCandidatesTotal();
  const int queries = 5;
  for (int q = 0; q < queries; ++q) {
    index.Search(RandomUnitVector(rng, dim), 10);
  }
  EXPECT_EQ(HnswRerankQueriesTotal() - q0, static_cast<uint64_t>(queries));
  // Each query re-scores at least k and at most rerank_k candidates.
  EXPECT_GE(HnswRerankCandidatesTotal() - c0, static_cast<uint64_t>(queries * 10));
  EXPECT_LE(HnswRerankCandidatesTotal() - c0,
            static_cast<uint64_t>(queries) * std::max<uint64_t>(index.config().rerank_k, 10));
}

TEST(HnswQuantizedTest, RerankZeroDisablesExactPass) {
  const size_t dim = 16;
  HnswIndexConfig config = QuantizedConfig(dim);
  config.rerank_k = 0;
  HnswIndex index(config);
  Rng rng(44);
  for (uint64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(index.Add(i, RandomUnitVector(rng, dim)).ok());
  }
  const uint64_t q0 = HnswRerankQueriesTotal();
  EXPECT_EQ(index.Search(RandomUnitVector(rng, dim), 5).size(), 5u);
  EXPECT_EQ(HnswRerankQueriesTotal(), q0);  // pure quantized scoring
}

TEST(HnswQuantizedTest, ArenaBytesMeetMemoryGate) {
  const size_t dim = 128;
  HnswIndex quant(QuantizedConfig(dim));
  HnswIndexConfig fconfig;
  fconfig.dim = dim;
  HnswIndex flt(fconfig);
  Rng rng(45);
  const size_t n = 500;
  for (uint64_t i = 0; i < n; ++i) {
    const auto v = RandomUnitVector(rng, dim);
    ASSERT_TRUE(quant.Add(i, v).ok());
    ASSERT_TRUE(flt.Add(i, v).ok());
  }
  // dim=128: float arena = 512 B/vec; int8 arena = 128 codes + 4 scale bytes.
  EXPECT_EQ(flt.arena_bytes(), n * dim * sizeof(float));
  EXPECT_EQ(quant.arena_bytes(), n * (dim + sizeof(float)));
  EXPECT_LE(quant.arena_bytes() / n, 160u);  // the ci.sh acceptance gate
}

TEST(HnswQuantizedTest, GraphImageRoundTripsExactly) {
  const size_t dim = 32;
  HnswIndexConfig config = QuantizedConfig(dim);
  HnswIndex index(config);
  Rng rng(46);
  for (uint64_t i = 0; i < 400; ++i) {
    ASSERT_TRUE(index.Add(i, RandomUnitVector(rng, dim)).ok());
  }
  for (uint64_t i = 0; i < 400; i += 7) {
    ASSERT_TRUE(index.Remove(i));
  }
  std::string blob;
  index.SaveGraph(&blob);

  HnswIndex restored(config);
  ASSERT_TRUE(restored.LoadGraph(blob));
  EXPECT_EQ(restored.size(), index.size());
  EXPECT_EQ(restored.tombstones(), index.tombstones());
  EXPECT_EQ(restored.max_level(), index.max_level());
  EXPECT_EQ(restored.arena_bytes(), index.arena_bytes());

  // The quantized image stores raw codes + scales, so restored searches are
  // bit-identical, and restored vectors match the originals exactly.
  for (int q = 0; q < 20; ++q) {
    const auto query = RandomUnitVector(rng, dim);
    const auto a = index.Search(query, 10);
    const auto b = restored.Search(query, 10);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, b[i].id);
      EXPECT_DOUBLE_EQ(a[i].score, b[i].score);
    }
  }
  for (uint64_t i = 1; i < 400; i += 7) {
    std::vector<float> va, vb;
    ASSERT_TRUE(index.GetVector(i, &va));
    ASSERT_TRUE(restored.GetVector(i, &vb));
    EXPECT_EQ(va, vb);
  }

  // Future inserts diverge identically: the rng stream was restored too.
  const auto v = RandomUnitVector(rng, dim);
  ASSERT_TRUE(index.Add(1000, v).ok());
  ASSERT_TRUE(restored.Add(1000, v).ok());
  const auto query = RandomUnitVector(rng, dim);
  const auto a = index.Search(query, 10);
  const auto b = restored.Search(query, 10);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
  }
}

TEST(HnswQuantizedTest, QuantizationModeMismatchRejectsImage) {
  const size_t dim = 16;
  HnswIndexConfig qconfig = QuantizedConfig(dim);
  HnswIndexConfig fconfig;
  fconfig.dim = dim;
  Rng rng(47);

  HnswIndex quant(qconfig);
  HnswIndex flt(fconfig);
  for (uint64_t i = 0; i < 100; ++i) {
    const auto v = RandomUnitVector(rng, dim);
    ASSERT_TRUE(quant.Add(i, v).ok());
    ASSERT_TRUE(flt.Add(i, v).ok());
  }
  std::string quant_blob, float_blob;
  quant.SaveGraph(&quant_blob);
  flt.SaveGraph(&float_blob);

  // Cross-mode loads must fail and leave the target untouched (the caller
  // falls back to rebuilding from embeddings, requantizing along the way).
  HnswIndex quant_target(qconfig);
  ASSERT_TRUE(quant_target.Add(7, RandomUnitVector(rng, dim)).ok());
  EXPECT_FALSE(quant_target.LoadGraph(float_blob));
  EXPECT_EQ(quant_target.size(), 1u);

  HnswIndex float_target(fconfig);
  EXPECT_FALSE(float_target.LoadGraph(quant_blob));
  EXPECT_EQ(float_target.size(), 0u);

  // Same mode still round-trips.
  EXPECT_TRUE(quant_target.LoadGraph(quant_blob));
  EXPECT_EQ(quant_target.size(), 100u);
}

TEST(HnswQuantizedTest, CompactionPreservesQuantizedVectors) {
  const size_t dim = 32;
  HnswIndexConfig config = QuantizedConfig(dim);
  config.min_tombstones_to_compact = 1 << 30;  // manual compaction only
  HnswIndex index(config);
  Rng rng(48);
  for (uint64_t i = 0; i < 300; ++i) {
    ASSERT_TRUE(index.Add(i, RandomUnitVector(rng, dim)).ok());
  }
  std::vector<std::vector<float>> before(300);
  for (uint64_t i = 0; i < 300; ++i) {
    ASSERT_TRUE(index.GetVector(i, &before[i]));
  }
  for (uint64_t i = 0; i < 300; i += 2) {
    ASSERT_TRUE(index.Remove(i));
  }
  index.Compact();
  EXPECT_EQ(index.tombstones(), 0u);
  // Requantizing a dequantized vector reproduces the same codes and scale, so
  // survivors come through compaction bit-identical.
  for (uint64_t i = 1; i < 300; i += 2) {
    std::vector<float> after;
    ASSERT_TRUE(index.GetVector(i, &after));
    EXPECT_EQ(after, before[i]);
  }
}

TEST(RetrievalBackendQuantizeTest, ConfigMapsToHnsw) {
  RetrievalBackendConfig config;
  config.kind = RetrievalBackendKind::kHnsw;
  config.quantize = QuantizationKind::kInt8;
  config.rerank_k = 48;
  auto index = MakeRetrievalIndex(config, 64, 1);
  auto* hnsw = dynamic_cast<HnswIndex*>(index.get());
  ASSERT_NE(hnsw, nullptr);
  EXPECT_TRUE(hnsw->config().quantize_int8);
  EXPECT_EQ(hnsw->config().rerank_k, 48u);

  config.quantize = QuantizationKind::kNone;
  auto index2 = MakeRetrievalIndex(config, 64, 1);
  auto* hnsw2 = dynamic_cast<HnswIndex*>(index2.get());
  ASSERT_NE(hnsw2, nullptr);
  EXPECT_FALSE(hnsw2->config().quantize_int8);
}

TEST(RetrievalBackendQuantizeTest, KindNamesParseAndPrint) {
  EXPECT_STREQ(QuantizationKindName(QuantizationKind::kNone), "none");
  EXPECT_STREQ(QuantizationKindName(QuantizationKind::kInt8), "int8");
  QuantizationKind kind = QuantizationKind::kNone;
  EXPECT_TRUE(ParseQuantizationKind("int8", &kind));
  EXPECT_EQ(kind, QuantizationKind::kInt8);
  EXPECT_TRUE(ParseQuantizationKind("none", &kind));
  EXPECT_EQ(kind, QuantizationKind::kNone);
  EXPECT_FALSE(ParseQuantizationKind("fp16", &kind));
  EXPECT_EQ(kind, QuantizationKind::kNone);  // untouched on failure
}

}  // namespace
}  // namespace iccache
