#include "src/common/rng.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace iccache {
namespace {

TEST(SplitMix64Test, AdvancesStateDeterministically) {
  uint64_t s1 = 42;
  uint64_t s2 = 42;
  EXPECT_EQ(SplitMix64(s1), SplitMix64(s2));
  EXPECT_EQ(s1, s2);
  EXPECT_NE(SplitMix64(s1), SplitMix64(s2) + 1);  // streams stay in lockstep
}

TEST(Mix64Test, IsDeterministicAndSpreads) {
  EXPECT_EQ(Mix64(7), Mix64(7));
  EXPECT_NE(Mix64(7), Mix64(8));
  // Nearby inputs should differ in many bits (avalanche).
  const uint64_t x = Mix64(1000) ^ Mix64(1001);
  EXPECT_GT(__builtin_popcountll(x), 10);
}

TEST(RngTest, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++equal;
    }
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(9);
  Rng fork = a.Fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == fork.NextU64()) {
      ++equal;
    }
  }
  EXPECT_LE(equal, 1);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(6);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Uniform();
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 2.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 2.0);
  }
}

TEST(RngTest, UniformIntBounded) {
  Rng rng(8);
  std::set<uint64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const uint64_t v = rng.UniformInt(10);
    ASSERT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values hit
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = rng.UniformInt(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(10);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, NormalShiftScale) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Normal(5.0, 2.0);
  }
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RngTest, LogNormalIsPositiveWithExpectedMedian) {
  Rng rng(12);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.LogNormal(3.0, 0.5);
    ASSERT_GT(x, 0.0);
    xs.push_back(x);
  }
  std::nth_element(xs.begin(), xs.begin() + xs.size() / 2, xs.end());
  EXPECT_NEAR(xs[xs.size() / 2], std::exp(3.0), 1.2);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Exponential(4.0);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(RngTest, GammaMeanMatchesShapeScale) {
  Rng rng(14);
  double sum = 0.0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Gamma(3.0, 2.0);
  }
  EXPECT_NEAR(sum / n, 6.0, 0.15);
}

TEST(RngTest, GammaWithShapeBelowOne) {
  Rng rng(15);
  double sum = 0.0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Gamma(0.5, 1.0);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.05);
}

TEST(RngTest, BetaMeanMatches) {
  Rng rng(16);
  double sum = 0.0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Beta(2.0, 6.0);
    ASSERT_GE(x, 0.0);
    ASSERT_LE(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(17);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  EXPECT_FALSE(rng.Bernoulli(-1.0));
  EXPECT_TRUE(rng.Bernoulli(2.0));
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(18);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, PoissonSmallMean) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    const int64_t k = rng.Poisson(3.5);
    ASSERT_GE(k, 0);
    sum += static_cast<double>(k);
  }
  EXPECT_NEAR(sum / n, 3.5, 0.1);
}

TEST(RngTest, PoissonLargeMeanUsesNormalApprox) {
  Rng rng(20);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(rng.Poisson(200.0));
  }
  EXPECT_NEAR(sum / n, 200.0, 1.5);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(21);
  const std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.Categorical(weights)];
  }
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.1, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.3, 0.015);
  EXPECT_NEAR(static_cast<double>(counts[3]) / n, 0.6, 0.015);
}

TEST(RngTest, CategoricalDegenerateInput) {
  Rng rng(22);
  EXPECT_EQ(rng.Categorical({}), 0u);
  EXPECT_EQ(rng.Categorical({0.0, 0.0}), 1u);
}

TEST(RngTest, PermutationIsValid) {
  Rng rng(23);
  const std::vector<size_t> perm = rng.Permutation(100);
  std::set<size_t> unique(perm.begin(), perm.end());
  EXPECT_EQ(unique.size(), 100u);
  EXPECT_EQ(*unique.begin(), 0u);
  EXPECT_EQ(*unique.rbegin(), 99u);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(24);
  for (size_t k : {0u, 1u, 5u, 50u, 100u}) {
    const std::vector<size_t> sample = rng.SampleWithoutReplacement(100, k);
    std::set<size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(sample.size(), k);
    EXPECT_EQ(unique.size(), k);
    for (size_t v : sample) {
      EXPECT_LT(v, 100u);
    }
  }
}

TEST(RngTest, SampleWithoutReplacementClampsK) {
  Rng rng(25);
  EXPECT_EQ(rng.SampleWithoutReplacement(10, 50).size(), 10u);
}

TEST(ZipfSamplerTest, PmfDecreasesWithRank) {
  ZipfSampler zipf(1000, 1.1);
  for (size_t k = 1; k < 100; ++k) {
    EXPECT_GT(zipf.Pmf(k - 1), zipf.Pmf(k));
  }
}

TEST(ZipfSamplerTest, PmfSumsToOne) {
  ZipfSampler zipf(500, 0.9);
  double sum = 0.0;
  for (size_t k = 0; k < 500; ++k) {
    sum += zipf.Pmf(k);
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfSamplerTest, SamplesConcentrateOnHead) {
  ZipfSampler zipf(1000, 1.2);
  Rng rng(26);
  int head_hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (zipf.Sample(rng) < 10) {
      ++head_hits;
    }
  }
  // The top-10 ranks should carry a large share of the mass under s = 1.2.
  EXPECT_GT(static_cast<double>(head_hits) / n, 0.35);
}

TEST(ZipfSamplerTest, OutOfRangePmfIsZero) {
  ZipfSampler zipf(10, 1.0);
  EXPECT_EQ(zipf.Pmf(10), 0.0);
  EXPECT_EQ(zipf.Pmf(1000), 0.0);
}

// Property sweep: every distribution sampler stays within its support across
// seeds.
class RngSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngSeedSweep, DistributionsStayInSupport) {
  Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    EXPECT_GE(rng.Uniform(), 0.0);
    EXPECT_LT(rng.Uniform(), 1.0);
    EXPECT_GT(rng.LogNormal(0.0, 1.0), 0.0);
    EXPECT_GE(rng.Exponential(1.0), 0.0);
    EXPECT_GE(rng.Gamma(2.0, 1.0), 0.0);
    const double b = rng.Beta(2.0, 2.0);
    EXPECT_GE(b, 0.0);
    EXPECT_LE(b, 1.0);
    EXPECT_GE(rng.Poisson(2.0), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(1ull, 42ull, 0xdeadbeefull, 0xffffffffffffffffull,
                                           0x123456789abcdefull));

}  // namespace
}  // namespace iccache
